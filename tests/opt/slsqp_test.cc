#include "kgacc/opt/slsqp.h"

#include <cmath>

#include <gtest/gtest.h>

namespace kgacc {
namespace {

TEST(SolveLinearSystemTest, SolvesTwoByTwo) {
  // [2 1; 1 3] x = [3; 5]  ->  x = (4/5, 7/5).
  std::vector<double> x;
  ASSERT_TRUE(internal::SolveLinearSystem({2, 1, 1, 3}, {3, 5}, 2, &x));
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(SolveLinearSystemTest, RequiresPivoting) {
  // Leading zero forces a row swap: [0 1; 1 0] x = [2; 3] -> x = (3, 2).
  std::vector<double> x;
  ASSERT_TRUE(internal::SolveLinearSystem({0, 1, 1, 0}, {2, 3}, 2, &x));
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SolveLinearSystemTest, DetectsSingularity) {
  std::vector<double> x;
  EXPECT_FALSE(internal::SolveLinearSystem({1, 2, 2, 4}, {1, 2}, 2, &x));
}

TEST(SolveLinearSystemTest, SolvesFourByFourIdentityLike) {
  // Diagonal system with mixed scales.
  std::vector<double> a = {4, 0, 0, 0, 0, 0.5, 0, 0,
                           0, 0, 10, 0, 0, 0, 0, 1};
  std::vector<double> x;
  ASSERT_TRUE(internal::SolveLinearSystem(a, {8, 1, 5, -2}, 4, &x));
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
  EXPECT_NEAR(x[2], 0.5, 1e-12);
  EXPECT_NEAR(x[3], -2.0, 1e-12);
}

TEST(SlsqpTest, UnconstrainedQuadratic) {
  SlsqpProblem p;
  p.objective = [](const std::vector<double>& x) {
    return (x[0] - 1.0) * (x[0] - 1.0) + (x[1] + 2.0) * (x[1] + 2.0);
  };
  const auto r = MinimizeSlsqp(p, {0.0, 0.0});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->converged);
  EXPECT_NEAR(r->x[0], 1.0, 1e-6);
  EXPECT_NEAR(r->x[1], -2.0, 1e-6);
}

TEST(SlsqpTest, UnconstrainedRosenbrock) {
  SlsqpProblem p;
  p.objective = [](const std::vector<double>& x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  SlsqpOptions opts;
  opts.max_iterations = 500;
  const auto r = MinimizeSlsqp(p, {-1.2, 1.0}, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->x[0], 1.0, 1e-4);
  EXPECT_NEAR(r->x[1], 1.0, 1e-4);
}

TEST(SlsqpTest, LinearEqualityConstraint) {
  // min x^2 + y^2 s.t. x + y = 1  ->  (1/2, 1/2).
  SlsqpProblem p;
  p.objective = [](const std::vector<double>& x) {
    return x[0] * x[0] + x[1] * x[1];
  };
  p.eq_constraints.push_back(
      [](const std::vector<double>& x) { return x[0] + x[1] - 1.0; });
  const auto r = MinimizeSlsqp(p, {0.0, 0.0});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->converged);
  EXPECT_NEAR(r->x[0], 0.5, 1e-7);
  EXPECT_NEAR(r->x[1], 0.5, 1e-7);
  EXPECT_LT(r->max_violation, 1e-9);
}

TEST(SlsqpTest, NonlinearEqualityConstraint) {
  // min x + y s.t. x^2 + y^2 = 1  ->  (-sqrt(2)/2, -sqrt(2)/2).
  SlsqpProblem p;
  p.objective = [](const std::vector<double>& x) { return x[0] + x[1]; };
  p.eq_constraints.push_back([](const std::vector<double>& x) {
    return x[0] * x[0] + x[1] * x[1] - 1.0;
  });
  const auto r = MinimizeSlsqp(p, {0.5, -0.8});
  ASSERT_TRUE(r.ok());
  const double s = -std::sqrt(0.5);
  EXPECT_NEAR(r->x[0], s, 1e-5);
  EXPECT_NEAR(r->x[1], s, 1e-5);
  EXPECT_NEAR(r->fx, 2.0 * s, 1e-5);
}

TEST(SlsqpTest, AnalyticGradientsGiveSameAnswer) {
  SlsqpProblem p;
  p.objective = [](const std::vector<double>& x) {
    return x[0] * x[0] + 2.0 * x[1] * x[1];
  };
  p.gradient = [](const std::vector<double>& x) {
    return std::vector<double>{2.0 * x[0], 4.0 * x[1]};
  };
  p.eq_constraints.push_back(
      [](const std::vector<double>& x) { return x[0] + x[1] - 3.0; });
  p.eq_gradients.push_back(
      [](const std::vector<double>&) { return std::vector<double>{1.0, 1.0}; });
  const auto r = MinimizeSlsqp(p, {0.0, 0.0});
  ASSERT_TRUE(r.ok());
  // Lagrange solution: x = 2, y = 1.
  EXPECT_NEAR(r->x[0], 2.0, 1e-6);
  EXPECT_NEAR(r->x[1], 1.0, 1e-6);
}

TEST(SlsqpTest, ActiveBoundConstraint) {
  // min (x - 2)^2 with x in [0, 1]  ->  x = 1.
  SlsqpProblem p;
  p.objective = [](const std::vector<double>& x) {
    return (x[0] - 2.0) * (x[0] - 2.0);
  };
  p.lower = {0.0};
  p.upper = {1.0};
  const auto r = MinimizeSlsqp(p, {0.5});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->x[0], 1.0, 1e-8);
}

TEST(SlsqpTest, BoundsAndEqualityTogether) {
  // min (x-3)^2 + (y-3)^2 s.t. x + y = 1, 0 <= x,y <= 1.
  // Unconstrained-on-the-line solution is (1/2, 1/2), inside the box.
  SlsqpProblem p;
  p.objective = [](const std::vector<double>& x) {
    return (x[0] - 3.0) * (x[0] - 3.0) + (x[1] - 3.0) * (x[1] - 3.0);
  };
  p.eq_constraints.push_back(
      [](const std::vector<double>& x) { return x[0] + x[1] - 1.0; });
  p.lower = {0.0, 0.0};
  p.upper = {1.0, 1.0};
  const auto r = MinimizeSlsqp(p, {0.9, 0.1});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->x[0], 0.5, 1e-6);
  EXPECT_NEAR(r->x[1], 0.5, 1e-6);
}

TEST(SlsqpTest, StartPointOutsideBoundsIsClamped) {
  SlsqpProblem p;
  p.objective = [](const std::vector<double>& x) { return x[0] * x[0]; };
  p.lower = {1.0};
  p.upper = {2.0};
  const auto r = MinimizeSlsqp(p, {-5.0});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->x[0], 1.0, 1e-8);
}

TEST(SlsqpTest, RejectsMalformedProblems) {
  SlsqpProblem no_objective;
  EXPECT_FALSE(MinimizeSlsqp(no_objective, {0.0}).ok());

  SlsqpProblem bad_bounds;
  bad_bounds.objective = [](const std::vector<double>& x) { return x[0]; };
  bad_bounds.lower = {0.0, 0.0};  // Size mismatch with x0.
  EXPECT_FALSE(MinimizeSlsqp(bad_bounds, {0.0}).ok());

  SlsqpProblem crossed;
  crossed.objective = [](const std::vector<double>& x) { return x[0]; };
  crossed.lower = {2.0};
  crossed.upper = {1.0};
  EXPECT_FALSE(MinimizeSlsqp(crossed, {0.0}).ok());

  SlsqpProblem empty_start;
  empty_start.objective = [](const std::vector<double>&) { return 0.0; };
  EXPECT_FALSE(MinimizeSlsqp(empty_start, {}).ok());
}

TEST(SlsqpTest, ReturnsTheBfgsHessianForWarmStarting) {
  // min x^2 + y^2 s.t. x + y = 1: the Lagrangian Hessian is 2I.
  SlsqpProblem p;
  p.objective = [](const std::vector<double>& x) {
    return x[0] * x[0] + x[1] * x[1];
  };
  p.gradient = [](const std::vector<double>& x) {
    return std::vector<double>{2.0 * x[0], 2.0 * x[1]};
  };
  p.eq_constraints.push_back(
      [](const std::vector<double>& x) { return x[0] + x[1] - 1.0; });
  p.eq_gradients.push_back(
      [](const std::vector<double>&) { return std::vector<double>{1.0, 1.0}; });
  const auto first = MinimizeSlsqp(p, {0.9, 0.0});
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->converged);
  ASSERT_EQ(first->hessian.size(), 4u);

  // Re-solving a nearby problem from the carried model must converge to
  // the same solution, at most as many iterations as the identity restart.
  SlsqpOptions warm;
  warm.initial_hessian = &first->hessian;
  const auto warmed = MinimizeSlsqp(p, {0.45, 0.52}, warm);
  const auto cold = MinimizeSlsqp(p, {0.45, 0.52});
  ASSERT_TRUE(warmed.ok());
  ASSERT_TRUE(cold.ok());
  EXPECT_TRUE(warmed->converged);
  EXPECT_NEAR(warmed->x[0], 0.5, 1e-8);
  EXPECT_NEAR(warmed->x[1], 0.5, 1e-8);
  EXPECT_LE(warmed->iterations, cold->iterations);
}

TEST(SlsqpTest, MalformedInitialHessianFallsBackToIdentity) {
  SlsqpProblem p;
  p.objective = [](const std::vector<double>& x) {
    return (x[0] - 1.0) * (x[0] - 1.0) + (x[1] + 2.0) * (x[1] + 2.0);
  };
  const std::vector<double> wrong_size = {1.0, 0.0, 0.0};
  SlsqpOptions opts;
  opts.initial_hessian = &wrong_size;
  const auto r = MinimizeSlsqp(p, {0.0, 0.0}, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->converged);
  EXPECT_NEAR(r->x[0], 1.0, 1e-6);
  EXPECT_NEAR(r->x[1], -2.0, 1e-6);
}

TEST(SlsqpTest, ShortStepAloneIsNotConvergenceUnderStationarityTest) {
  // A wildly over-scaled warm Hessian makes the first QP step tiny while
  // the iterate is far from optimal. With the legacy short-step test the
  // solver "converges" on the spot; with the KKT stationarity test enabled
  // it must either keep working toward (0.5, 0.5) or admit non-convergence
  // — never certify the bogus point.
  SlsqpProblem p;
  p.objective = [](const std::vector<double>& x) {
    return x[0] * x[0] + x[1] * x[1];
  };
  p.gradient = [](const std::vector<double>& x) {
    return std::vector<double>{2.0 * x[0], 2.0 * x[1]};
  };
  p.eq_constraints.push_back(
      [](const std::vector<double>& x) { return x[0] + x[1] - 1.0; });
  p.eq_gradients.push_back(
      [](const std::vector<double>&) { return std::vector<double>{1.0, 1.0}; });
  const std::vector<double> inflated = {1e8, 0.0, 0.0, 1e8};

  SlsqpOptions legacy;
  legacy.step_tol = 1e-6;
  legacy.initial_hessian = &inflated;
  const auto stalled = MinimizeSlsqp(p, {0.9, 0.1}, legacy);
  ASSERT_TRUE(stalled.ok());
  // Demonstrates the trap: short-step "convergence" at the start point.
  EXPECT_TRUE(stalled->converged);
  EXPECT_NEAR(stalled->x[0], 0.9, 1e-3);

  SlsqpOptions strict = legacy;
  strict.stationarity_tol = 1e-6;
  strict.max_iterations = 500;
  const auto checked = MinimizeSlsqp(p, {0.9, 0.1}, strict);
  ASSERT_TRUE(checked.ok());
  const bool reached_optimum = std::fabs(checked->x[0] - 0.5) < 1e-4 &&
                               std::fabs(checked->x[1] - 0.5) < 1e-4;
  EXPECT_TRUE(!checked->converged || reached_optimum)
      << "certified a non-stationary point: x = (" << checked->x[0] << ", "
      << checked->x[1] << ")";
  if (checked->converged) {
    EXPECT_LT(checked->kkt_residual, 1e-6);
  }
}

TEST(SlsqpTest, StationarityTestAcceptsTrueSolutions) {
  // The tightened test must not reject genuinely converged solves.
  SlsqpProblem p;
  p.objective = [](const std::vector<double>& x) {
    return x[0] * x[0] + x[1] * x[1];
  };
  p.gradient = [](const std::vector<double>& x) {
    return std::vector<double>{2.0 * x[0], 2.0 * x[1]};
  };
  p.eq_constraints.push_back(
      [](const std::vector<double>& x) { return x[0] + x[1] - 1.0; });
  p.eq_gradients.push_back(
      [](const std::vector<double>&) { return std::vector<double>{1.0, 1.0}; });
  SlsqpOptions strict;
  strict.stationarity_tol = 1e-6;
  const auto r = MinimizeSlsqp(p, {0.0, 0.0}, strict);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->converged);
  EXPECT_NEAR(r->x[0], 0.5, 1e-7);
  EXPECT_LT(r->kkt_residual, 1e-6);
}

TEST(SlsqpTest, StationarityProjectsActiveBoundMultipliers) {
  // min (x - 2)^2 on [0, 1]: the solution x = 1 has gradient -2, absorbed
  // by the upper-bound multiplier. The projected KKT residual must treat
  // it as stationary, so the solve converges under the strict test.
  SlsqpProblem p;
  p.objective = [](const std::vector<double>& x) {
    return (x[0] - 2.0) * (x[0] - 2.0);
  };
  p.gradient = [](const std::vector<double>& x) {
    return std::vector<double>{2.0 * (x[0] - 2.0)};
  };
  p.lower = {0.0};
  p.upper = {1.0};
  SlsqpOptions strict;
  strict.stationarity_tol = 1e-6;
  const auto r = MinimizeSlsqp(p, {0.5}, strict);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->converged);
  EXPECT_NEAR(r->x[0], 1.0, 1e-8);
  EXPECT_LT(r->kkt_residual, 1e-6);
}

TEST(SlsqpTest, ThreeVariableConstrainedProblem) {
  // min x^2 + y^2 + z^2 s.t. x + 2y + 3z = 6 -> x = 6/14*(1,2,3).
  SlsqpProblem p;
  p.objective = [](const std::vector<double>& x) {
    return x[0] * x[0] + x[1] * x[1] + x[2] * x[2];
  };
  p.eq_constraints.push_back([](const std::vector<double>& x) {
    return x[0] + 2.0 * x[1] + 3.0 * x[2] - 6.0;
  });
  const auto r = MinimizeSlsqp(p, {1.0, 1.0, 1.0});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->x[0], 6.0 / 14.0, 1e-6);
  EXPECT_NEAR(r->x[1], 12.0 / 14.0, 1e-6);
  EXPECT_NEAR(r->x[2], 18.0 / 14.0, 1e-6);
}

TEST(SlsqpTest, TwoEqualityConstraints) {
  // min x^2+y^2+z^2 s.t. x+y=2, y+z=2 -> by symmetry (2/3, 4/3, 2/3).
  SlsqpProblem p;
  p.objective = [](const std::vector<double>& x) {
    return x[0] * x[0] + x[1] * x[1] + x[2] * x[2];
  };
  p.eq_constraints.push_back(
      [](const std::vector<double>& x) { return x[0] + x[1] - 2.0; });
  p.eq_constraints.push_back(
      [](const std::vector<double>& x) { return x[1] + x[2] - 2.0; });
  const auto r = MinimizeSlsqp(p, {0.0, 0.0, 0.0});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->x[0], 2.0 / 3.0, 1e-6);
  EXPECT_NEAR(r->x[1], 4.0 / 3.0, 1e-6);
  EXPECT_NEAR(r->x[2], 2.0 / 3.0, 1e-6);
}

}  // namespace
}  // namespace kgacc
