#include "kgacc/opt/newton_kkt.h"

#include <cmath>
#include <limits>

// This binary's (sole) allocation-counting TU: the templated solver entry
// point promises allocation-free solves for inlineable callables.
#include "kgacc/util/alloc_counter.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

/// A well-behaved benchmark system with the HPD structure (two coupled
/// equations, solution strictly inside the unit box):
///   r0 = x1 - x0 - 0.5        (an affine "coverage" equation)
///   r1 = x1^2 + x0^2 - 0.5    (a convex coupling)
/// In-box root: x0 = (sqrt(3) - 1)/4 ~ 0.183, x1 = x0 + 0.5 ~ 0.683.
KktSystem2Fn QuadraticSystem() {
  return [](double x0, double x1, double* r, double* jac) {
    r[0] = x1 - x0 - 0.5;
    r[1] = x1 * x1 + x0 * x0 - 0.5;
    jac[0] = -1.0;
    jac[1] = 1.0;
    jac[2] = 2.0 * x0;
    jac[3] = 2.0 * x1;
  };
}

TEST(NewtonKkt2Test, SolvesQuadraticSystemWithCertificate) {
  const auto solve = SolveNewtonKkt2(QuadraticSystem(), 0.1, 0.9);
  ASSERT_TRUE(solve.ok());
  EXPECT_TRUE(solve->converged);
  EXPECT_EQ(solve->reason, NewtonKktStop::kConverged);
  // Certificate: residuals actually satisfy the reported tolerances.
  EXPECT_LE(std::fabs(solve->r0), 1e-12);
  EXPECT_LE(std::fabs(solve->r1), 1e-9);
  // And the iterate satisfies the system independently.
  EXPECT_NEAR(solve->x1 - solve->x0, 0.5, 1e-10);
  EXPECT_NEAR(solve->x1 * solve->x1 + solve->x0 * solve->x0, 0.5, 1e-9);
  EXPECT_LT(solve->x0, solve->x1);
  // Newton on a smooth 2x2 system from a nearby start: a handful of
  // iterations, each costing one system evaluation plus line-search trials.
  EXPECT_LE(solve->iterations, 10);
  EXPECT_GE(solve->system_evals, solve->iterations);
}

TEST(NewtonKkt2Test, QuadraticConvergenceIsFast) {
  // From a start close to the solution the iteration must finish in very
  // few steps (the property the HPD warm carry exploits).
  const auto far = SolveNewtonKkt2(QuadraticSystem(), 0.05, 0.95);
  ASSERT_TRUE(far.ok());
  ASSERT_TRUE(far->converged);
  const auto near = SolveNewtonKkt2(QuadraticSystem(), far->x0 + 1e-4,
                                    far->x1 - 1e-4);
  ASSERT_TRUE(near.ok());
  EXPECT_TRUE(near->converged);
  EXPECT_LE(near->iterations, 4);
  EXPECT_NEAR(near->x0, far->x0, 1e-10);
  EXPECT_NEAR(near->x1, far->x1, 1e-10);
}

TEST(NewtonKkt2Test, ReportsSingularJacobian) {
  // Identically dependent rows: the Newton system has no unique step.
  const KktSystem2Fn degenerate = [](double x0, double x1, double* r,
                                     double* jac) {
    r[0] = x1 - x0 - 0.25;
    r[1] = 2.0 * (x1 - x0) - 0.5 + 0.1;  // Parallel, inconsistent.
    jac[0] = -1.0;
    jac[1] = 1.0;
    jac[2] = -2.0;
    jac[3] = 2.0;
  };
  const auto solve = SolveNewtonKkt2(degenerate, 0.2, 0.8);
  ASSERT_TRUE(solve.ok());
  EXPECT_FALSE(solve->converged);
  EXPECT_EQ(solve->reason, NewtonKktStop::kSingularJacobian);
}

TEST(NewtonKkt2Test, ReportsNonFiniteSystem) {
  const KktSystem2Fn nan_system = [](double, double, double* r, double* jac) {
    r[0] = std::numeric_limits<double>::quiet_NaN();
    r[1] = 0.0;
    jac[0] = jac[1] = jac[2] = jac[3] = 1.0;
  };
  const auto solve = SolveNewtonKkt2(nan_system, 0.2, 0.8);
  ASSERT_TRUE(solve.ok());
  EXPECT_FALSE(solve->converged);
  EXPECT_EQ(solve->reason, NewtonKktStop::kNonFinite);
}

TEST(NewtonKkt2Test, ReportsResidualGrowthOutsideBasin) {
  // A system whose Newton direction always increases the residual norm:
  // r = (atan of a huge slope) — steps overshoot wildly and backtracking
  // cannot find a decrease from the flat tails.
  const KktSystem2Fn nasty = [](double x0, double x1, double* r, double* jac) {
    r[0] = std::atan(1e8 * (x0 - 0.5)) + 1.0;  // Never zero on the tails.
    r[1] = std::atan(1e8 * (x1 - 0.5)) - 1.0;
    const double d0 = 1e8 / (1.0 + 1e16 * (x0 - 0.5) * (x0 - 0.5));
    const double d1 = 1e8 / (1.0 + 1e16 * (x1 - 0.5) * (x1 - 0.5));
    jac[0] = d0;
    jac[1] = 0.0;
    jac[2] = 0.0;
    jac[3] = d1;
  };
  const auto solve = SolveNewtonKkt2(nasty, 0.01, 0.99);
  ASSERT_TRUE(solve.ok());
  EXPECT_FALSE(solve->converged);
  // The exit reason depends on where the iterate wanders, but it must be a
  // basin-exit report, not a claimed convergence.
  EXPECT_NE(solve->reason, NewtonKktStop::kConverged);
}

TEST(NewtonKkt2Test, ReportsPinnedAtBox) {
  // The root of this system lies outside the box: the iterate runs into
  // the wall and the solver reports the pin instead of grinding on it.
  const KktSystem2Fn outside = [](double x0, double x1, double* r,
                                  double* jac) {
    r[0] = x0 + 2.0;   // Root at x0 = -2, far left of the box.
    r[1] = x1 - 0.75;  // Root at x1 = 0.75, inside.
    jac[0] = 1.0;
    jac[1] = 0.0;
    jac[2] = 0.0;
    jac[3] = 1.0;
  };
  NewtonKkt2Options options;
  options.lo = 0.01;
  options.hi = 0.99;
  const auto solve = SolveNewtonKkt2(outside, 0.3, 0.6, options);
  ASSERT_TRUE(solve.ok());
  EXPECT_FALSE(solve->converged);
  EXPECT_EQ(solve->reason, NewtonKktStop::kPinnedAtBox);
  EXPECT_LE(solve->x0, options.lo + 1e-12);
}

TEST(NewtonKkt2Test, HonorsMaxIterations) {
  NewtonKkt2Options options;
  options.max_iterations = 1;
  options.r0_tol = 1e-15;
  options.r1_tol = 1e-15;
  const auto solve = SolveNewtonKkt2(QuadraticSystem(), 0.01, 0.99, options);
  ASSERT_TRUE(solve.ok());
  EXPECT_FALSE(solve->converged);
  EXPECT_EQ(solve->reason, NewtonKktStop::kMaxIterations);
  EXPECT_EQ(solve->iterations, 1);
}

TEST(NewtonKkt2Test, RejectsMalformedInput) {
  EXPECT_FALSE(SolveNewtonKkt2(nullptr, 0.1, 0.9).ok());

  NewtonKkt2Options empty_box;
  empty_box.lo = 0.8;
  empty_box.hi = 0.2;
  EXPECT_FALSE(SolveNewtonKkt2(QuadraticSystem(), 0.1, 0.9, empty_box).ok());

  // Start collapses after clamping: x0 >= x1.
  EXPECT_FALSE(SolveNewtonKkt2(QuadraticSystem(), 0.9, 0.1).ok());
}

TEST(NewtonKkt2Test, TemplatedSolveWithLambdaAllocatesNothing) {
  // Passing a lambda hits the templated entry point: no std::function is
  // constructed, so a solve performs zero heap allocations — the property
  // that lets the interval layer join the session's zero-allocation
  // steady-state contract. (A KktSystem2Fn argument still works and still
  // type-erases; that path is covered by the tests above.)
  const auto lambda_system = [](double x0, double x1, double* r,
                                double* jac) {
    r[0] = x1 - x0 - 0.5;
    r[1] = x1 * x1 + x0 * x0 - 0.5;
    jac[0] = -1.0;
    jac[1] = 1.0;
    jac[2] = 2.0 * x0;
    jac[3] = 2.0 * x1;
  };
  // Warm-up solve outside the measured window.
  ASSERT_TRUE(SolveNewtonKkt2(lambda_system, 0.1, 0.9).ok());
  const uint64_t before = alloc_counter::Current();
  for (int i = 0; i < 10; ++i) {
    const auto solve = SolveNewtonKkt2(lambda_system, 0.1, 0.9);
    ASSERT_TRUE(solve.ok());
    ASSERT_TRUE(solve->converged);
  }
  EXPECT_EQ(alloc_counter::Current() - before, 0u)
      << "templated Newton KKT solves allocated";
}

TEST(NewtonKkt2Test, TemplateAndTypeErasedPathsAgreeExactly) {
  const auto lambda_system = [](double x0, double x1, double* r,
                                double* jac) {
    r[0] = x1 - x0 - 0.5;
    r[1] = x1 * x1 + x0 * x0 - 0.5;
    jac[0] = -1.0;
    jac[1] = 1.0;
    jac[2] = 2.0 * x0;
    jac[3] = 2.0 * x1;
  };
  const auto direct = SolveNewtonKkt2(lambda_system, 0.1, 0.9);
  const auto erased = SolveNewtonKkt2(KktSystem2Fn(lambda_system), 0.1, 0.9);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(erased.ok());
  EXPECT_EQ(direct->x0, erased->x0);
  EXPECT_EQ(direct->x1, erased->x1);
  EXPECT_EQ(direct->iterations, erased->iterations);
  EXPECT_EQ(direct->system_evals, erased->system_evals);
}

TEST(NewtonKkt2Test, StopNamesAreStable) {
  EXPECT_STREQ(NewtonKktStopName(NewtonKktStop::kConverged), "converged");
  EXPECT_STREQ(NewtonKktStopName(NewtonKktStop::kPinnedAtBox),
               "pinned-at-box");
  EXPECT_STREQ(NewtonKktStopName(NewtonKktStop::kResidualGrowth),
               "residual-growth");
}

}  // namespace
}  // namespace kgacc
