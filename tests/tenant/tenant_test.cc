// Tenant subsystem semantics: the registry's file grammar and lookup
// policy (explicit entry vs '*' fallback vs open single-tenant mode), the
// durable quota ledger (cumulative frames, latest-wins replay, compaction
// to one live frame per tenant, byte-exact balances across reopen), and
// the weighted deficit-round-robin scheduler (long-run shares track the
// weight ratio; an idle tenant forfeits its deficit; removal returns
// exactly what was queued).

#include "kgacc/tenant/tenant.h"

#include <unistd.h>

#include <cstdio>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "kgacc/tenant/drr.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

std::string TempPath(const char* name) {
  return testing::TempDir() + "/kgacc_tenant_test_" + name + "_" +
         std::to_string(::getpid());
}

// ---------------------------------------------------------------------------
// TenantRegistry

TEST(TenantRegistryTest, ParsesTenantsFileWithFallback) {
  const auto registry = TenantRegistry::Parse(
      "# fleet quotas\n"
      "alice  oracle_budget=500 store_quota=1048576 weight=3\n"
      "bob    weight=1 max_sessions=2 max_inflight_steps=64\n"
      "\n"
      "*      weight=1  # everyone else\n");
  ASSERT_TRUE(registry.ok());
  EXPECT_FALSE(registry->open());
  ASSERT_EQ(registry->tenants().size(), 2u);

  const TenantConfig* alice = registry->Lookup("alice");
  ASSERT_NE(alice, nullptr);
  EXPECT_EQ(alice->oracle_budget, 500u);
  EXPECT_EQ(alice->store_byte_quota, 1048576u);
  EXPECT_EQ(alice->weight, 3u);
  EXPECT_EQ(alice->max_sessions, 0u);

  const TenantConfig* bob = registry->Lookup("bob");
  ASSERT_NE(bob, nullptr);
  EXPECT_EQ(bob->oracle_budget, 0u);
  EXPECT_EQ(bob->max_sessions, 2u);
  EXPECT_EQ(bob->max_inflight_steps, 64u);

  // Unlisted tenants land on the '*' fallback.
  const TenantConfig* carol = registry->Lookup("carol");
  ASSERT_NE(carol, nullptr);
  EXPECT_EQ(carol->id, "*");
  EXPECT_EQ(carol->weight, 1u);
}

TEST(TenantRegistryTest, ClosedRegistryRejectsUnknownTenants) {
  const auto registry = TenantRegistry::Parse("alice oracle_budget=10\n");
  ASSERT_TRUE(registry.ok());
  EXPECT_NE(registry->Lookup("alice"), nullptr);
  EXPECT_EQ(registry->Lookup("mallory"), nullptr);
}

TEST(TenantRegistryTest, OpenRegistryAdmitsEveryoneUnlimited) {
  const TenantRegistry registry;  // Daemon-without---tenants mode.
  EXPECT_TRUE(registry.open());
  const TenantConfig* config = registry.Lookup("anyone");
  ASSERT_NE(config, nullptr);
  EXPECT_EQ(config->oracle_budget, 0u);
  EXPECT_EQ(config->store_byte_quota, 0u);
  EXPECT_EQ(config->weight, 1u);
}

TEST(TenantRegistryTest, NormalizeMapsEmptyToDefault) {
  EXPECT_EQ(TenantRegistry::Normalize(""), "default");
  EXPECT_EQ(TenantRegistry::Normalize("alice"), "alice");
}

TEST(TenantRegistryTest, RejectsMalformedInput) {
  // One representative per error class; every line must fail Parse.
  const char* bad[] = {
      "al/ice oracle_budget=1\n",       // invalid id characters
      "alice oracle_budget\n",          // missing '='
      "alice oracle_budget=abc\n",      // non-numeric value
      "alice froop=3\n",                // unknown key
      "alice weight=0\n",               // weight floor is 1
      "alice weight=1\nalice weight=2\n",  // duplicate tenant
      "* weight=1\n* weight=2\n",       // duplicate fallback
  };
  for (const char* text : bad) {
    const auto registry = TenantRegistry::Parse(text);
    EXPECT_FALSE(registry.ok()) << "accepted: " << text;
  }
}

TEST(TenantRegistryTest, RemainingAllowanceTreatsZeroAsUnlimited) {
  EXPECT_EQ(RemainingAllowance(0, 12345),
            std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(RemainingAllowance(100, 40), 60u);
  EXPECT_EQ(RemainingAllowance(100, 100), 0u);
  EXPECT_EQ(RemainingAllowance(100, 5000), 0u);  // Overshoot clamps.
}

// ---------------------------------------------------------------------------
// QuotaLedger

TEST(QuotaLedgerTest, ChargesAccumulateAndSurviveReopen) {
  const std::string path = TempPath("reopen");
  std::remove(path.c_str());
  {
    auto ledger = QuotaLedger::Open(path);
    ASSERT_TRUE(ledger.ok());
    EXPECT_EQ((*ledger)->Balance("alice").oracle_spent, 0u);
    ASSERT_TRUE((*ledger)->Charge("alice", 10, 100).ok());
    ASSERT_TRUE((*ledger)->Charge("bob", 1, 7).ok());
    ASSERT_TRUE((*ledger)->Charge("alice", 5, 50).ok());
    const TenantBalance alice = (*ledger)->Balance("alice");
    EXPECT_EQ(alice.oracle_spent, 15u);
    EXPECT_EQ(alice.store_bytes, 150u);
    ASSERT_TRUE((*ledger)->Sync().ok());
  }
  auto ledger = QuotaLedger::Open(path);
  ASSERT_TRUE(ledger.ok());
  // Bitwise-identical balances after reopen: the restart guarantee the
  // daemon's admission checks ride on.
  EXPECT_EQ((*ledger)->Balance("alice").oracle_spent, 15u);
  EXPECT_EQ((*ledger)->Balance("alice").store_bytes, 150u);
  EXPECT_EQ((*ledger)->Balance("bob").oracle_spent, 1u);
  EXPECT_EQ((*ledger)->Balance("bob").store_bytes, 7u);
  // Replay saw every cumulative frame (3 appends), latest-wins.
  EXPECT_EQ((*ledger)->store()->stats().ledgers_replayed, 3u);
  std::remove(path.c_str());
}

TEST(QuotaLedgerTest, BalancesAreSortedAndCompleteAndNeverSpentIsZero) {
  const std::string path = TempPath("sorted");
  std::remove(path.c_str());
  auto ledger = QuotaLedger::Open(path);
  ASSERT_TRUE(ledger.ok());
  ASSERT_TRUE((*ledger)->Charge("zeta", 1, 1).ok());
  ASSERT_TRUE((*ledger)->Charge("alpha", 2, 2).ok());
  const std::vector<TenantBalance> balances = (*ledger)->Balances();
  ASSERT_EQ(balances.size(), 2u);
  EXPECT_EQ(balances[0].tenant, "alpha");
  EXPECT_EQ(balances[1].tenant, "zeta");
  const TenantBalance never = (*ledger)->Balance("never-spent");
  EXPECT_EQ(never.oracle_spent, 0u);
  EXPECT_EQ(never.store_bytes, 0u);
  std::remove(path.c_str());
}

TEST(QuotaLedgerTest, CompactionFoldsToOneFramePerTenant) {
  const std::string path = TempPath("compact");
  std::remove(path.c_str());
  {
    auto ledger = QuotaLedger::Open(path);
    ASSERT_TRUE(ledger.ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE((*ledger)->Charge("alice", 2, 20).ok());
      ASSERT_TRUE((*ledger)->Charge("bob", 1, 10).ok());
    }
    ASSERT_TRUE((*ledger)->Compact().ok());
    EXPECT_EQ((*ledger)->Balance("alice").oracle_spent, 100u);
  }
  auto ledger = QuotaLedger::Open(path);
  ASSERT_TRUE(ledger.ok());
  // 100 historical frames fold to exactly one live frame per tenant, and
  // the folded totals equal the pre-compaction balances.
  EXPECT_EQ((*ledger)->store()->stats().ledgers_replayed, 2u);
  EXPECT_EQ((*ledger)->Balance("alice").oracle_spent, 100u);
  EXPECT_EQ((*ledger)->Balance("alice").store_bytes, 1000u);
  EXPECT_EQ((*ledger)->Balance("bob").oracle_spent, 50u);
  EXPECT_EQ((*ledger)->Balance("bob").store_bytes, 500u);
  // And charging continues cleanly on the compacted log.
  ASSERT_TRUE((*ledger)->Charge("alice", 1, 1).ok());
  EXPECT_EQ((*ledger)->Balance("alice").oracle_spent, 101u);
  std::remove(path.c_str());
}

TEST(QuotaLedgerTest, ConcurrentChargesAreNeverLost) {
  const std::string path = TempPath("concurrent");
  std::remove(path.c_str());
  auto ledger = QuotaLedger::Open(path);
  ASSERT_TRUE(ledger.ok());
  constexpr int kThreads = 4;
  constexpr int kChargesPerThread = 64;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ledger, t] {
      const std::string tenant = (t % 2 == 0) ? "even" : "odd";
      for (int i = 0; i < kChargesPerThread; ++i) {
        ASSERT_TRUE((*ledger)->Charge(tenant, 1, 3).ok());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Two threads fed each tenant; the serialized read-modify-append must
  // not have dropped a single delta.
  for (const char* tenant : {"even", "odd"}) {
    const TenantBalance balance = (*ledger)->Balance(tenant);
    EXPECT_EQ(balance.oracle_spent, 2u * kChargesPerThread);
    EXPECT_EQ(balance.store_bytes, 6u * kChargesPerThread);
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// DrrScheduler

TEST(DrrSchedulerTest, FifoWithinOneTenant) {
  DrrScheduler sched(4);
  sched.Push("a", 1, DrrItem{1, 1});
  sched.Push("a", 1, DrrItem{2, 1});
  sched.Push("a", 1, DrrItem{3, 1});
  EXPECT_EQ(sched.size(), 3u);
  EXPECT_EQ(sched.Pop()->id, 1u);
  EXPECT_EQ(sched.Pop()->id, 2u);
  EXPECT_EQ(sched.Pop()->id, 3u);
  EXPECT_FALSE(sched.Pop().has_value());
  EXPECT_TRUE(sched.empty());
}

TEST(DrrSchedulerTest, LongRunSharesTrackWeights) {
  // Two always-backlogged tenants at weights 3:1 and equal unit costs:
  // served shares must converge to 75% / 25%. The ISSUE's fairness
  // tolerance is 15%; a deterministic scheduler does far better.
  DrrScheduler sched(2);
  std::map<std::string, int> served;
  int queued_a = 0;
  int queued_b = 0;
  constexpr int kRounds = 400;
  for (int i = 0; i < kRounds; ++i) {
    // Keep both backlogs topped up so neither queue ever empties.
    while (queued_a < 8) {
      sched.Push("heavy", 3, DrrItem{100, 1});
      ++queued_a;
    }
    while (queued_b < 8) {
      sched.Push("light", 1, DrrItem{200, 1});
      ++queued_b;
    }
    const auto item = sched.Pop();
    ASSERT_TRUE(item.has_value());
    if (item->id == 100) {
      ++served["heavy"];
      --queued_a;
    } else {
      ++served["light"];
      --queued_b;
    }
  }
  const double heavy_share =
      static_cast<double>(served["heavy"]) / static_cast<double>(kRounds);
  EXPECT_NEAR(heavy_share, 0.75, 0.05);
}

TEST(DrrSchedulerTest, WeightsApplyToCostsNotJustCounts) {
  // Same 3:1 weights but the heavy tenant's items cost 3 each: served
  // *cost* should still track the weights, so item counts equalize.
  DrrScheduler sched(3);
  uint64_t heavy_cost = 0;
  uint64_t light_cost = 0;
  for (int round = 0; round < 200; ++round) {
    if (sched.QueuedFor("heavy") < 4) sched.Push("heavy", 3, DrrItem{1, 3});
    if (sched.QueuedFor("light") < 4) sched.Push("light", 1, DrrItem{2, 1});
    const auto item = sched.Pop();
    ASSERT_TRUE(item.has_value());
    (item->id == 1 ? heavy_cost : light_cost) += item->cost;
  }
  const double heavy_share =
      static_cast<double>(heavy_cost) /
      static_cast<double>(heavy_cost + light_cost);
  EXPECT_NEAR(heavy_share, 0.75, 0.08);
}

TEST(DrrSchedulerTest, IdleTenantForfeitsDeficit) {
  DrrScheduler sched(10);
  // One expensive item: the first visit credits quantum x weight = 10,
  // serves the cost-4 item, and the emptied queue forfeits the remaining
  // 6 credits.
  sched.Push("a", 1, DrrItem{1, 4});
  EXPECT_EQ(sched.Pop()->id, 1u);
  // After idling, a cost-16 item needs two fresh visits' credit (10 + 10),
  // not the hoarded remainder — the scheduler must not serve it on credit
  // accumulated while the queue slept.
  sched.Push("a", 1, DrrItem{2, 16});
  EXPECT_EQ(sched.Pop()->id, 2u);  // Still served: visits repeat until it fits.
  EXPECT_TRUE(sched.empty());
}

TEST(DrrSchedulerTest, RemoveIdReturnsExactlyWhatWasQueued) {
  DrrScheduler sched(4);
  sched.Push("a", 1, DrrItem{7, 2});
  sched.Push("a", 1, DrrItem{8, 3});
  sched.Push("b", 1, DrrItem{7, 5});
  const DrrRemoved removed = sched.RemoveId(7);
  EXPECT_EQ(removed.items, 2u);
  EXPECT_EQ(removed.cost, 7u);
  EXPECT_EQ(sched.size(), 1u);
  EXPECT_EQ(sched.QueuedFor("a"), 1u);
  EXPECT_EQ(sched.QueuedCostFor("a"), 3u);
  EXPECT_EQ(sched.QueuedFor("b"), 0u);
  // Removing an unknown id is a no-op.
  const DrrRemoved nothing = sched.RemoveId(999);
  EXPECT_EQ(nothing.items, 0u);
  EXPECT_EQ(sched.Pop()->id, 8u);
}

TEST(DrrSchedulerTest, ClearDropsEverything) {
  DrrScheduler sched(4);
  sched.Push("a", 1, DrrItem{1, 1});
  sched.Push("b", 2, DrrItem{2, 1});
  sched.Clear();
  EXPECT_TRUE(sched.empty());
  EXPECT_FALSE(sched.Pop().has_value());
  // The scheduler stays usable after Clear.
  sched.Push("a", 1, DrrItem{3, 1});
  EXPECT_EQ(sched.Pop()->id, 3u);
}

}  // namespace
}  // namespace kgacc
