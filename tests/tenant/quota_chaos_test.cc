// Chaos coverage for the tenant quota ledger, per ISSUE: two tenants spend
// concurrently while `store.append` faults are injected, a compaction is
// made to fail at its rename point, and a real child process is SIGKILLed
// after a known spend — in every case the reopened ledger must replay
// exactly the acknowledged balances: a charge the ledger acked is never
// lost, a charge it failed is never counted.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "kgacc/tenant/tenant.h"
#include "kgacc/util/failpoint.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

std::string TempPath(const char* name) {
  return testing::TempDir() + "/kgacc_quota_chaos_" + name + "_" +
         std::to_string(::getpid());
}

TEST(QuotaChaosTest, InjectedAppendFaultsNeverLoseOrDoubleCountSpend) {
  const std::string path = TempPath("faults");
  std::remove(path.c_str());
  // Acknowledged charges per tenant, counted by the spending threads
  // themselves: the ground truth the durable log is measured against.
  std::atomic<uint64_t> acked_alice{0};
  std::atomic<uint64_t> acked_bob{0};
  {
    auto ledger = QuotaLedger::Open(path);
    ASSERT_TRUE(ledger.ok());
    ScopedFailpoints faults("store.append=prob:0.3:seed:9001");
    ASSERT_TRUE(faults.status().ok());
    std::thread alice([&] {
      for (int i = 0; i < 200; ++i) {
        if ((*ledger)->Charge("alice", 1, 3).ok()) {
          acked_alice.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
    std::thread bob([&] {
      for (int i = 0; i < 200; ++i) {
        if ((*ledger)->Charge("bob", 2, 5).ok()) {
          acked_bob.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
    alice.join();
    bob.join();
    // Faults actually fired (prob 0.3 over 400 charges) and some charges
    // still landed — otherwise the round proves nothing.
    ASSERT_LT(acked_alice.load() + acked_bob.load(), 400u);
    ASSERT_GT(acked_alice.load() + acked_bob.load(), 0u);
    // In-memory balances already equal the acknowledged spend.
    EXPECT_EQ((*ledger)->Balance("alice").oracle_spent, acked_alice.load());
    EXPECT_EQ((*ledger)->Balance("bob").oracle_spent,
              2u * acked_bob.load());
    ASSERT_TRUE((*ledger)->Sync().ok());
  }
  // Reopen with injection disarmed: replay must land on exactly the
  // acknowledged totals — nothing lost, nothing double-counted.
  auto reopened = QuotaLedger::Open(path);
  ASSERT_TRUE(reopened.ok());
  const TenantBalance alice = (*reopened)->Balance("alice");
  EXPECT_EQ(alice.oracle_spent, acked_alice.load());
  EXPECT_EQ(alice.store_bytes, 3u * acked_alice.load());
  const TenantBalance bob = (*reopened)->Balance("bob");
  EXPECT_EQ(bob.oracle_spent, 2u * acked_bob.load());
  EXPECT_EQ(bob.store_bytes, 5u * acked_bob.load());
  std::remove(path.c_str());
}

TEST(QuotaChaosTest, FailedCompactionRenameLeavesBalancesIntact) {
  const std::string path = TempPath("compact_rename");
  std::remove(path.c_str());
  {
    auto ledger = QuotaLedger::Open(path);
    ASSERT_TRUE(ledger.ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE((*ledger)->Charge("alice", 3, 7).ok());
      ASSERT_TRUE((*ledger)->Charge("bob", 1, 2).ok());
    }
    {
      ScopedFailpoints faults("store.compact.rename=once");
      ASSERT_TRUE(faults.status().ok());
      // The compaction dies at the atomic-rename point: the original log
      // must stay authoritative and the balances untouched.
      EXPECT_FALSE((*ledger)->Compact().ok());
    }
    EXPECT_EQ((*ledger)->Balance("alice").oracle_spent, 60u);
    EXPECT_EQ((*ledger)->Balance("bob").store_bytes, 40u);
    // Charging keeps working after the failed fold, and a clean retry
    // compacts normally.
    ASSERT_TRUE((*ledger)->Charge("alice", 1, 1).ok());
    ASSERT_TRUE((*ledger)->Compact().ok());
  }
  // Reopen (recovery also reaps any stale .compact temp): balances exact.
  auto reopened = QuotaLedger::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->Balance("alice").oracle_spent, 61u);
  EXPECT_EQ((*reopened)->Balance("alice").store_bytes, 141u);
  EXPECT_EQ((*reopened)->Balance("bob").oracle_spent, 20u);
  EXPECT_EQ((*reopened)->Balance("bob").store_bytes, 40u);
  std::remove(path.c_str());
}

/// Child body: spend a fixed, known amount for two tenants and SIGKILL
/// ourselves — no destructors, no explicit sync beyond the store's own
/// per-frame discipline. Plain exits only; never unwind into gtest.
[[noreturn]] void RunChildAndCrash(const std::string& path) {
  auto ledger = QuotaLedger::Open(path);
  if (!ledger.ok()) _exit(10);
  for (int i = 0; i < 37; ++i) {
    if (!(*ledger)->Charge("alice", 1, 3).ok()) _exit(11);
  }
  for (int i = 0; i < 21; ++i) {
    if (!(*ledger)->Charge("bob", 2, 5).ok()) _exit(12);
  }
  std::raise(SIGKILL);
  _exit(13);  // Unreachable.
}

TEST(QuotaChaosTest, SigkilledSpenderReplaysExactBalances) {
  const std::string path = TempPath("sigkill");
  std::remove(path.c_str());
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) RunChildAndCrash(path);
  int wait_status = 0;
  ASSERT_EQ(::waitpid(child, &wait_status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wait_status))
      << "child exited with code "
      << (WIFEXITED(wait_status) ? WEXITSTATUS(wait_status) : -1)
      << " instead of dying by SIGKILL";
  ASSERT_EQ(WTERMSIG(wait_status), SIGKILL);

  // A fresh process (this one) reopens the ledger: every acknowledged
  // charge must replay, bit for bit — the daemon-restart guarantee.
  auto ledger = QuotaLedger::Open(path);
  ASSERT_TRUE(ledger.ok());
  const TenantBalance alice = (*ledger)->Balance("alice");
  EXPECT_EQ(alice.oracle_spent, 37u);
  EXPECT_EQ(alice.store_bytes, 111u);
  const TenantBalance bob = (*ledger)->Balance("bob");
  EXPECT_EQ(bob.oracle_spent, 42u);
  EXPECT_EQ(bob.store_bytes, 105u);
  // And the survivor can keep charging on the same log.
  ASSERT_TRUE((*ledger)->Charge("alice", 1, 1).ok());
  EXPECT_EQ((*ledger)->Balance("alice").oracle_spent, 38u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace kgacc
