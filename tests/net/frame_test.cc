#include "kgacc/net/frame.h"

#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

// Wire-framing boundary and fuzz coverage, mirroring wal_test's torn-tail
// and bit-flip cases at the protocol layer. The contract under test:
// malformed input fails the *connection* (a sticky descriptive status from
// Next), and never crashes, hangs, or silently yields a wrong frame.

namespace kgacc {
namespace {

std::vector<uint8_t> Payload(size_t n, uint8_t seed = 7) {
  std::vector<uint8_t> p(n);
  for (size_t i = 0; i < n; ++i) p[i] = static_cast<uint8_t>(seed + i * 31);
  return p;
}

TEST(NetFrameTest, RoundTripsSingleFrame) {
  const std::vector<uint8_t> payload = Payload(100);
  const std::vector<uint8_t> wire = EncodeNetFrame(9, payload);
  FrameAssembler assembler;
  assembler.Feed(wire);
  NetFrame frame;
  auto have = assembler.Next(&frame);
  ASSERT_TRUE(have.ok()) << have.status().ToString();
  ASSERT_TRUE(*have);
  EXPECT_EQ(frame.type, 9);
  EXPECT_EQ(frame.payload, payload);
  // Nothing trailing.
  have = assembler.Next(&frame);
  ASSERT_TRUE(have.ok());
  EXPECT_FALSE(*have);
  EXPECT_EQ(assembler.buffered_bytes(), 0u);
}

TEST(NetFrameTest, RoundTripsEmptyPayload) {
  const std::vector<uint8_t> wire = EncodeNetFrame(3, {});
  FrameAssembler assembler;
  assembler.Feed(wire);
  NetFrame frame;
  auto have = assembler.Next(&frame);
  ASSERT_TRUE(have.ok());
  ASSERT_TRUE(*have);
  EXPECT_EQ(frame.type, 3);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(NetFrameTest, ManyFramesInOneFeed) {
  std::vector<uint8_t> wire;
  for (uint8_t t = 1; t <= 40; ++t) {
    AppendNetFrame(t, Payload(t * 3, t), &wire);
  }
  FrameAssembler assembler;
  assembler.Feed(wire);
  for (uint8_t t = 1; t <= 40; ++t) {
    NetFrame frame;
    auto have = assembler.Next(&frame);
    ASSERT_TRUE(have.ok()) << have.status().ToString();
    ASSERT_TRUE(*have) << "frame " << int(t);
    EXPECT_EQ(frame.type, t);
    EXPECT_EQ(frame.payload, Payload(t * 3, t));
  }
  NetFrame frame;
  auto have = assembler.Next(&frame);
  ASSERT_TRUE(have.ok());
  EXPECT_FALSE(*have);
}

TEST(NetFrameTest, ByteByByteDeliveryAssemblesEveryFrame) {
  // Worst-case interleaving: the socket hands over one byte per read. The
  // assembler must report "need more" at every prefix and produce each
  // frame exactly at its final byte.
  std::vector<uint8_t> wire;
  for (uint8_t t = 1; t <= 5; ++t) AppendNetFrame(t, Payload(64, t), &wire);
  FrameAssembler assembler;
  int frames = 0;
  for (const uint8_t byte : wire) {
    assembler.Feed({&byte, 1});
    NetFrame frame;
    auto have = assembler.Next(&frame);
    ASSERT_TRUE(have.ok()) << have.status().ToString();
    if (*have) {
      ++frames;
      EXPECT_EQ(frame.type, frames);
      EXPECT_EQ(frame.payload, Payload(64, static_cast<uint8_t>(frames)));
    }
  }
  EXPECT_EQ(frames, 5);
  EXPECT_EQ(assembler.buffered_bytes(), 0u);
}

TEST(NetFrameTest, RandomChunkingAssemblesEveryFrame) {
  std::vector<uint8_t> wire;
  for (int t = 1; t <= 30; ++t) {
    AppendNetFrame(static_cast<uint8_t>(t),
                   Payload(static_cast<size_t>(t) * 17 % 300,
                           static_cast<uint8_t>(t)),
                   &wire);
  }
  std::mt19937 rng(1234);
  for (int trial = 0; trial < 20; ++trial) {
    FrameAssembler assembler;
    size_t off = 0;
    int frames = 0;
    while (off < wire.size()) {
      const size_t n = std::min<size_t>(
          wire.size() - off, 1 + rng() % 97);
      assembler.Feed({wire.data() + off, n});
      off += n;
      while (true) {
        NetFrame frame;
        auto have = assembler.Next(&frame);
        ASSERT_TRUE(have.ok()) << have.status().ToString();
        if (!*have) break;
        ++frames;
      }
    }
    EXPECT_EQ(frames, 30) << "trial " << trial;
    EXPECT_EQ(assembler.buffered_bytes(), 0u);
  }
}

TEST(NetFrameTest, TruncatedPrefixIsNeedMoreNotError) {
  // Every strict prefix of a valid frame is "in flight", never corrupt:
  // the assembler cannot tell a slow sender from a torn tail until more
  // bytes arrive, so it must keep answering ok/false.
  const std::vector<uint8_t> wire = EncodeNetFrame(5, Payload(200));
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    FrameAssembler assembler;
    assembler.Feed({wire.data(), cut});
    NetFrame frame;
    auto have = assembler.Next(&frame);
    ASSERT_TRUE(have.ok()) << "cut at " << cut << ": "
                           << have.status().ToString();
    EXPECT_FALSE(*have) << "cut at " << cut;
    EXPECT_TRUE(assembler.stream_error().ok());
  }
}

TEST(NetFrameTest, EveryeSingleBitFlipIsDetected) {
  // The WAL bit-flip case at the wire: flip each bit of an encoded frame
  // and demand either a CRC/structure error or (for length-prefix flips
  // that merely lengthen the frame) a "need more bytes" stall — never a
  // silently delivered wrong frame.
  const std::vector<uint8_t> payload = Payload(48);
  const std::vector<uint8_t> wire = EncodeNetFrame(7, payload);
  for (size_t byte = 0; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> corrupt = wire;
      corrupt[byte] ^= static_cast<uint8_t>(1u << bit);
      FrameAssembler assembler;
      assembler.Feed(corrupt);
      NetFrame frame;
      auto have = assembler.Next(&frame);
      if (have.ok() && *have) {
        ADD_FAILURE() << "bit flip at byte " << byte << " bit " << bit
                      << " delivered a frame undetected";
      }
      if (!have.ok()) {
        // Sticky: the stream is dead for good.
        EXPECT_FALSE(assembler.stream_error().ok());
        auto again = assembler.Next(&frame);
        EXPECT_FALSE(again.ok());
        EXPECT_FALSE(have.status().message().empty());
      }
    }
  }
}

TEST(NetFrameTest, CrcMismatchIsStickyEvenAfterMoreValidFrames) {
  // Once the stream is corrupt there is no trustworthy frame boundary;
  // feeding perfectly valid frames afterwards must not resurrect it.
  std::vector<uint8_t> wire = EncodeNetFrame(2, Payload(32));
  wire[wire.size() - 1] ^= 0xff;  // smash the CRC
  FrameAssembler assembler;
  assembler.Feed(wire);
  NetFrame frame;
  auto have = assembler.Next(&frame);
  ASSERT_FALSE(have.ok());
  EXPECT_EQ(have.status().code(), StatusCode::kIoError);
  assembler.Feed(EncodeNetFrame(2, Payload(32)));
  auto again = assembler.Next(&frame);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), have.status().code());
}

TEST(NetFrameTest, OverlongFrameIsRejectedBeforeBuffering) {
  // A length prefix beyond the cap must fail immediately — the assembler
  // may not wait for (or buffer) a payload that large.
  FrameAssembler assembler(/*max_frame_bytes=*/1024);
  std::vector<uint8_t> wire;
  AppendNetFrame(1, Payload(2048), &wire);
  // Feed just the header: type + varint length. The cap check needs no
  // payload bytes.
  assembler.Feed({wire.data(), 4});
  NetFrame frame;
  auto have = assembler.Next(&frame);
  ASSERT_FALSE(have.ok());
  EXPECT_EQ(have.status().code(), StatusCode::kOutOfRange);
  EXPECT_FALSE(have.status().message().empty());
}

TEST(NetFrameTest, AtCapFrameStillRoundTrips) {
  FrameAssembler assembler(/*max_frame_bytes=*/1024);
  const std::vector<uint8_t> payload = Payload(1024);
  assembler.Feed(EncodeNetFrame(4, payload));
  NetFrame frame;
  auto have = assembler.Next(&frame);
  ASSERT_TRUE(have.ok()) << have.status().ToString();
  ASSERT_TRUE(*have);
  EXPECT_EQ(frame.payload, payload);
}

TEST(NetFrameTest, UnterminatedVarintPrefixIsRejected) {
  // Ten continuation bytes with the high bit set: no valid u64 varint is
  // that long, so the stream is structurally corrupt, not merely slow.
  FrameAssembler assembler;
  std::vector<uint8_t> junk(1, 1);  // type byte
  junk.insert(junk.end(), 10, 0x80);
  assembler.Feed(junk);
  NetFrame frame;
  auto have = assembler.Next(&frame);
  ASSERT_FALSE(have.ok());
  EXPECT_FALSE(have.status().message().empty());
}

TEST(NetFrameTest, RandomGarbageNeverCrashesOrHangs) {
  // Pure fuzz: random bytes in random chunk sizes. Any outcome is legal
  // except a crash, an infinite "need more" on a structurally dead stream
  // after the cap, or a delivered frame claiming a huge payload.
  std::mt19937 rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    FrameAssembler assembler(4096);
    bool dead = false;
    for (int chunk = 0; chunk < 64 && !dead; ++chunk) {
      std::vector<uint8_t> bytes(1 + rng() % 200);
      for (auto& b : bytes) b = static_cast<uint8_t>(rng());
      assembler.Feed(bytes);
      while (true) {
        NetFrame frame;
        auto have = assembler.Next(&frame);
        if (!have.ok()) {
          dead = true;
          break;
        }
        if (!*have) break;
        EXPECT_LE(frame.payload.size(), 4096u);
      }
    }
    // Either the stream died with a sticky error, or everything the fuzz
    // produced happened to parse — both fine; memory stayed bounded.
    EXPECT_LE(assembler.buffered_bytes(), 4096u + 16u);
  }
}

TEST(NetFrameTest, InterleavedPartialFramesAcrossFeeds) {
  // A frame boundary split inside the CRC while the next frame's bytes
  // ride in the same Feed call — the assembler must keep both straight.
  const std::vector<uint8_t> a = EncodeNetFrame(1, Payload(50, 1));
  const std::vector<uint8_t> b = EncodeNetFrame(2, Payload(60, 2));
  std::vector<uint8_t> wire = a;
  wire.insert(wire.end(), b.begin(), b.end());
  const size_t split = a.size() - 2;  // mid-CRC of frame a
  FrameAssembler assembler;
  assembler.Feed({wire.data(), split});
  NetFrame frame;
  auto have = assembler.Next(&frame);
  ASSERT_TRUE(have.ok());
  EXPECT_FALSE(*have);
  assembler.Feed({wire.data() + split, wire.size() - split});
  have = assembler.Next(&frame);
  ASSERT_TRUE(have.ok());
  ASSERT_TRUE(*have);
  EXPECT_EQ(frame.type, 1);
  have = assembler.Next(&frame);
  ASSERT_TRUE(have.ok());
  ASSERT_TRUE(*have);
  EXPECT_EQ(frame.type, 2);
}

}  // namespace
}  // namespace kgacc
