// End-to-end multi-tenancy on the audit daemon, per ISSUE: two tenants
// share one daemon; one exhausts its oracle budget mid-stream and is
// checkpointed (non-fatal QuotaExceeded — never a kill) while the other's
// audit completes byte-identical to a solo run; a daemon restart replays
// bitwise-identical ledger balances and a raised budget resumes the
// starved audit without re-paying a label; admission rejections are
// QuotaExceeded (a spent budget), distinct from Busy (transient load), and
// the client surfaces them immediately instead of backing off.

#include "kgacc/net/server.h"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "kgacc/eval/report.h"
#include "kgacc/eval/session.h"
#include "kgacc/kg/knowledge_graph.h"
#include "kgacc/net/client.h"
#include "kgacc/sampling/srs.h"
#include "kgacc/tenant/tenant.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

std::string TempDir(const char* name) {
  const std::string dir = testing::TempDir() + "/kgacc_tenant_daemon_" +
                          name + "_" + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Same deterministic clustered population the daemon tests use.
KnowledgeGraph TestKg() {
  KnowledgeGraphBuilder builder;
  for (int s = 0; s < 200; ++s) {
    const int facts = 1 + (s * 7 + 3) % 5;
    for (int o = 0; o < facts; ++o) {
      const bool bad_subject = (s % 11) == 0;
      const bool correct = bad_subject ? ((s + o) % 3 == 0)
                                       : ((s * 31 + o * 17) % 10 != 0);
      builder.Add("s" + std::to_string(s), "p" + std::to_string(o % 3),
                  "o" + std::to_string(s * 10 + o), correct);
    }
  }
  return *builder.Build();
}

EvaluationResult ReferenceRun(const KnowledgeGraph& kg, uint64_t seed) {
  OracleAnnotator oracle;
  SrsSampler sampler(kg, SrsConfig{});
  EvaluationConfig config;
  EvaluationSession session(sampler, oracle, config, seed);
  auto result = session.Run();
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return *result;
}

std::string RenderedJson(const std::string& dataset,
                         const std::string& design,
                         const EvaluationResult& result) {
  ReportContext context;
  context.dataset_name = dataset;
  context.design_name = design;
  EvaluationConfig config;
  return RenderJsonReport(context, config, result);
}

AuditDaemon::Options DaemonOptions(const std::string& store_dir,
                                   const std::string& tenants_spec) {
  AuditDaemon::Options options;
  options.port = 0;
  options.store_dir = store_dir;
  options.workers = 2;
  if (!tenants_spec.empty()) {
    auto registry = TenantRegistry::Parse(tenants_spec);
    EXPECT_TRUE(registry.ok()) << registry.status().ToString();
    options.tenants = std::move(*registry);
  }
  return options;
}

AuditClientOptions ClientOptions(uint16_t port, const std::string& tenant) {
  AuditClientOptions options;
  options.port = port;
  options.recv_timeout_ms = 2000;
  options.tenant = tenant;
  return options;
}

/// A raw protocol peer whose Hello announces a tenant — for the admission
/// cases where the real client's retry machinery would get in the way.
class TenantPeer {
 public:
  Status Connect(uint16_t port, const std::string& tenant) {
    auto fd = ConnectTcp(port);
    if (!fd.ok()) return fd.status();
    fd_ = std::move(*fd);
    KGACC_RETURN_IF_ERROR(SetRecvTimeoutMs(fd_.get(), 1500));
    HelloMsg hello;
    hello.tenant = tenant;
    KGACC_RETURN_IF_ERROR(
        Send(FrameOf(MessageType::kHello, EncodeHello, hello)));
    auto ack = Read();
    if (!ack.ok()) return ack.status();
    if (ack->type != static_cast<uint8_t>(MessageType::kHelloAck)) {
      return Status::Internal(std::string("expected HelloAck, got ") +
                              MessageTypeName(ack->type));
    }
    return Status::OK();
  }

  Status Send(const std::vector<uint8_t>& bytes) {
    return SendAll(fd_.get(), {bytes.data(), bytes.size()});
  }

  Result<NetFrame> Read() {
    NetFrame frame;
    while (true) {
      KGACC_ASSIGN_OR_RETURN(const bool have, assembler_.Next(&frame));
      if (have) return frame;
      uint8_t buf[4096];
      KGACC_ASSIGN_OR_RETURN(const size_t n,
                             RecvSome(fd_.get(), buf, sizeof(buf)));
      if (n == 0) return Status::IoError("peer: daemon closed connection");
      assembler_.Feed({buf, n});
    }
  }

 private:
  OwnedFd fd_;
  FrameAssembler assembler_{kDefaultMaxFrameBytes};
};

TEST(TenantDaemonTest, BudgetExhaustionStarvesOneTenantNotTheOther) {
  const KnowledgeGraph kg = TestKg();
  const EvaluationResult reference = ReferenceRun(kg, 42);
  const std::string dir = TempDir("exhaustion");
  // A budget an audit cannot finish under: distinct-label spend is at most
  // annotated_triples, so half of it trips mid-stream.
  const uint64_t budget =
      std::max<uint64_t>(5, reference.annotated_triples / 2);

  uint64_t alice_leg1_spend = 0;
  std::vector<TenantBalance> balances_at_shutdown;
  {
    AuditDaemon daemon(DaemonOptions(
        dir, "alice oracle_budget=" + std::to_string(budget) +
                 " weight=1\n"
                 "bob weight=3\n"));
    daemon.RegisterKg("kg", &kg);
    ASSERT_TRUE(daemon.Start().ok());

    // Alice runs into her budget mid-stream: the session is checkpointed
    // and the rejection is surfaced as QuotaExceeded — immediately, with
    // zero Busy-style backoff rounds (a spent budget is not load).
    OpenAuditMsg alice_open;
    alice_open.audit_id = 1;
    alice_open.kg_name = "kg";
    AuditClient alice(ClientOptions(daemon.port(), "alice"));
    auto alice_report = alice.RunAudit(alice_open);
    ASSERT_FALSE(alice_report.ok());
    EXPECT_EQ(alice_report.status().code(), StatusCode::kQuotaExceeded);
    EXPECT_GE(alice.stats().quota_exceeded_frames, 1u);
    EXPECT_EQ(alice.stats().last_quota_exceeded.quota, "oracle_budget");
    EXPECT_FALSE(alice.stats().last_quota_exceeded.fatal_to_session);
    EXPECT_EQ(alice.stats().busy_retries, 0u);
    EXPECT_GE(daemon.stats().quota_exhaustions.load(), 1u);
    // Exhaustion is not a session failure: the audit is parked, resumable.
    EXPECT_EQ(daemon.stats().sessions_failed.load(), 0u);

    // Bob is untouched by his neighbour's bankruptcy: byte-identical to
    // the storeless solo run.
    OpenAuditMsg bob_open;
    bob_open.audit_id = 2;
    bob_open.kg_name = "kg";
    AuditClient bob(ClientOptions(daemon.port(), "bob"));
    auto bob_report = bob.RunAudit(bob_open);
    ASSERT_TRUE(bob_report.ok()) << bob_report.status().ToString();
    EXPECT_EQ(RenderedJson("kg", bob_report->design_name,
                           bob_report->result),
              RenderedJson("kg", "SRS", reference));

    // A *new* audit under the spent budget is rejected at admission —
    // again QuotaExceeded, not Busy, and no backoff loop burned time on
    // it. (Re-opening audit 1 itself would re-adopt the parked session,
    // which deliberately skips admission.)
    OpenAuditMsg fresh_open;
    fresh_open.audit_id = 3;
    fresh_open.kg_name = "kg";
    AuditClient again(ClientOptions(daemon.port(), "alice"));
    auto rejected = again.RunAudit(fresh_open);
    ASSERT_FALSE(rejected.ok());
    EXPECT_EQ(rejected.status().code(), StatusCode::kQuotaExceeded);
    EXPECT_EQ(again.stats().last_quota_exceeded.quota, "oracle_budget");
    EXPECT_EQ(again.stats().busy_retries, 0u);
    EXPECT_GE(daemon.stats().quota_rejections.load(), 1u);

    // The durable spend sits exactly in [budget, full-audit): the gate
    // stops the session on the first step boundary at or past the budget.
    ASSERT_NE(daemon.ledger(), nullptr);
    alice_leg1_spend = daemon.ledger()->Balance("alice").oracle_spent;
    EXPECT_GE(alice_leg1_spend, budget);
    EXPECT_LT(alice_leg1_spend, reference.annotated_triples);
    daemon.Stop();
    balances_at_shutdown = daemon.ledger()->Balances();
    ASSERT_EQ(balances_at_shutdown.size(), 2u);  // alice and bob
  }

  // Restart with a raised budget: the ledger replays bitwise-identical
  // balances, and alice's parked audit resumes from its checkpoint to the
  // byte-identical reference without re-paying a single label.
  {
    AuditDaemon daemon(
        DaemonOptions(dir, "alice weight=1\nbob weight=3\n"));
    daemon.RegisterKg("kg", &kg);
    ASSERT_TRUE(daemon.Start().ok());
    ASSERT_NE(daemon.ledger(), nullptr);
    const std::vector<TenantBalance> replayed = daemon.ledger()->Balances();
    ASSERT_EQ(replayed.size(), balances_at_shutdown.size());
    for (size_t i = 0; i < replayed.size(); ++i) {
      EXPECT_EQ(replayed[i].tenant, balances_at_shutdown[i].tenant);
      EXPECT_EQ(replayed[i].oracle_spent,
                balances_at_shutdown[i].oracle_spent);
      EXPECT_EQ(replayed[i].store_bytes,
                balances_at_shutdown[i].store_bytes);
    }

    OpenAuditMsg alice_open;
    alice_open.audit_id = 1;
    alice_open.kg_name = "kg";
    AuditClient alice(ClientOptions(daemon.port(), "alice"));
    auto report = alice.RunAudit(alice_open);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(alice.stats().opened.resumed);
    EXPECT_GT(alice.stats().opened.start_step, 0u);
    EXPECT_EQ(RenderedJson("kg", report->design_name, report->result),
              RenderedJson("kg", "SRS", reference));
    // Labels paid before the exhaustion were never re-paid: the two legs
    // sum to exactly the ledger's final balance.
    EXPECT_EQ(daemon.ledger()->Balance("alice").oracle_spent,
              alice_leg1_spend + report->oracle_calls);
    daemon.Stop();
  }
}

TEST(TenantDaemonTest, StoreQuotaOverrunDegradesButCompletesTheAudit) {
  const KnowledgeGraph kg = TestKg();
  const EvaluationResult reference = ReferenceRun(kg, 42);
  const std::string dir = TempDir("store_quota");
  // One byte of store quota: the first charged frame trips it, the
  // annotator drops to read-only, and the audit still converges.
  AuditDaemon daemon(DaemonOptions(dir, "carol store_quota=1\n"));
  daemon.RegisterKg("kg", &kg);
  ASSERT_TRUE(daemon.Start().ok());

  OpenAuditMsg open;
  open.audit_id = 1;
  open.kg_name = "kg";
  AuditClient carol(ClientOptions(daemon.port(), "carol"));
  auto report = carol.RunAudit(open);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Soft quota: persistence degraded, result unharmed — still the
  // reference bytes.
  EXPECT_TRUE(report->degraded);
  EXPECT_TRUE(carol.stats().degraded_seen);
  EXPECT_GE(carol.stats().quota_exceeded_frames, 1u);
  EXPECT_EQ(carol.stats().last_quota_exceeded.quota, "store_quota");
  // The statistical payload is the reference bytes; only the degradation
  // marker (flag + cause note) differs, by design.
  EvaluationResult normalized = report->result;
  EXPECT_NE(normalized.degradation_note.find("quota"), std::string::npos)
      << normalized.degradation_note;
  normalized.degraded = false;
  normalized.degradation_note.clear();
  EXPECT_EQ(RenderedJson("kg", report->design_name, normalized),
            RenderedJson("kg", "SRS", reference));
  EXPECT_GE(daemon.stats().quota_degraded.load(), 1u);
  EXPECT_EQ(daemon.stats().sessions_failed.load(), 0u);
  daemon.Stop();
}

TEST(TenantDaemonTest, UnknownTenantOnClosedRegistryIsNotFound) {
  const KnowledgeGraph kg = TestKg();
  const std::string dir = TempDir("unknown");
  // Closed registry (no '*'): only alice exists.
  AuditDaemon daemon(DaemonOptions(dir, "alice weight=1\n"));
  daemon.RegisterKg("kg", &kg);
  ASSERT_TRUE(daemon.Start().ok());

  OpenAuditMsg open;
  open.audit_id = 1;
  open.kg_name = "kg";
  auto options = ClientOptions(daemon.port(), "mallory");
  options.max_reconnects = 1;
  options.backoff.max_attempts = 2;
  AuditClient client(options);
  auto report = client.RunAudit(open);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kNotFound);

  // The registered tenant is unaffected.
  AuditClient alice(ClientOptions(daemon.port(), "alice"));
  auto ok_report = alice.RunAudit(open);
  EXPECT_TRUE(ok_report.ok()) << ok_report.status().ToString();
  daemon.Stop();
}

TEST(TenantDaemonTest, TenantSessionCapIsQuotaExceededNotBusy) {
  const KnowledgeGraph kg = TestKg();
  const std::string dir = TempDir("session_cap");
  auto options = DaemonOptions(dir, "alice max_sessions=1\n* weight=1\n");
  options.max_sessions = 8;  // Daemon-wide cap far above the tenant's.
  AuditDaemon daemon(options);
  daemon.RegisterKg("kg", &kg);
  ASSERT_TRUE(daemon.Start().ok());

  // First session occupies alice's only slot via a raw connection that
  // holds the audit open.
  TenantPeer holder;
  ASSERT_TRUE(holder.Connect(daemon.port(), "alice").ok());
  OpenAuditMsg first;
  first.audit_id = 1;
  first.kg_name = "kg";
  ASSERT_TRUE(
      holder.Send(FrameOf(MessageType::kOpenAudit, EncodeOpenAudit, first))
          .ok());
  auto opened = holder.Read();
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ASSERT_EQ(opened->type, static_cast<uint8_t>(MessageType::kAuditOpened));

  // A second session for the same tenant trips the per-tenant cap: the
  // frame is QuotaExceeded naming the quota, not a generic Busy.
  OpenAuditMsg second = first;
  second.audit_id = 2;
  ASSERT_TRUE(
      holder.Send(FrameOf(MessageType::kOpenAudit, EncodeOpenAudit, second))
          .ok());
  auto rejected = holder.Read();
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  ASSERT_EQ(rejected->type,
            static_cast<uint8_t>(MessageType::kQuotaExceeded));
  auto msg = DecodeQuotaExceeded(
      {rejected->payload.data(), rejected->payload.size()});
  ASSERT_TRUE(msg.ok());
  EXPECT_EQ(msg->quota, "max_sessions");
  EXPECT_TRUE(msg->fatal_to_session);
  EXPECT_GE(daemon.stats().quota_rejections.load(), 1u);

  // Another tenant is not crowded out by alice's cap.
  OpenAuditMsg other = first;
  other.audit_id = 3;
  AuditClient bob(ClientOptions(daemon.port(), "bob"));
  auto report = bob.RunAudit(other);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  daemon.Stop();
}

}  // namespace
}  // namespace kgacc
