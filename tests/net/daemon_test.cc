#include "kgacc/net/server.h"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "kgacc/eval/report.h"
#include "kgacc/eval/session.h"
#include "kgacc/kg/knowledge_graph.h"
#include "kgacc/net/client.h"
#include "kgacc/sampling/srs.h"
#include "kgacc/util/failpoint.h"

#include <gtest/gtest.h>

// End-to-end coverage of the audit daemon's robustness model, in-process:
// a real AuditDaemon on a loopback socket, driven by the real AuditClient
// and by a raw protocol peer for the adversarial cases. The recurring
// assertion is the crash-tolerance contract — whatever happens to
// connections or processes, the audit's final report is byte-identical to
// an uninterrupted run and already-paid labels are never re-paid.

namespace kgacc {
namespace {

std::string TempDir(const char* name) {
  const std::string dir = testing::TempDir() + "/kgacc_daemon_test_" + name +
                          "_" + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// A deterministic ~600-triple population with clustered errors — small
/// enough that default-config audits converge in well under a second.
KnowledgeGraph TestKg() {
  KnowledgeGraphBuilder builder;
  for (int s = 0; s < 200; ++s) {
    const int facts = 1 + (s * 7 + 3) % 5;
    for (int o = 0; o < facts; ++o) {
      // Cluster-correlated labels: "bad" subjects are wrong more often.
      const bool bad_subject = (s % 11) == 0;
      const bool correct = bad_subject ? ((s + o) % 3 == 0)
                                       : ((s * 31 + o * 17) % 10 != 0);
      builder.Add("s" + std::to_string(s), "p" + std::to_string(o % 3),
                  "o" + std::to_string(s * 10 + o), correct);
    }
  }
  return *builder.Build();
}

/// The local, storeless, networkless reference run the daemon must match.
EvaluationResult ReferenceRun(const KnowledgeGraph& kg, uint64_t seed) {
  OracleAnnotator oracle;
  SrsSampler sampler(kg, SrsConfig{});
  EvaluationConfig config;
  EvaluationSession session(sampler, oracle, config, seed);
  auto result = session.Run();
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return *result;
}

std::string RenderedJson(const std::string& dataset,
                         const std::string& design,
                         const EvaluationResult& result) {
  ReportContext context;
  context.dataset_name = dataset;
  context.design_name = design;
  EvaluationConfig config;
  return RenderJsonReport(context, config, result);
}

AuditDaemon::Options DaemonOptions(const std::string& store_dir) {
  AuditDaemon::Options options;
  options.port = 0;
  options.store_dir = store_dir;
  options.workers = 2;
  return options;
}

AuditClientOptions ClientOptions(uint16_t port) {
  AuditClientOptions options;
  options.port = port;
  options.recv_timeout_ms = 2000;
  return options;
}

/// A raw protocol peer for the adversarial tests: speaks exactly the bytes
/// the test tells it to, no retries, no cleverness.
class TestPeer {
 public:
  Status Connect(uint16_t port, bool hello = true) {
    auto fd = ConnectTcp(port);
    if (!fd.ok()) return fd.status();
    fd_ = std::move(*fd);
    KGACC_RETURN_IF_ERROR(SetRecvTimeoutMs(fd_.get(), 1500));
    if (hello) {
      KGACC_RETURN_IF_ERROR(
          Send(FrameOf(MessageType::kHello, EncodeHello, HelloMsg{})));
      auto ack = Read();
      if (!ack.ok()) return ack.status();
      if (ack->type != static_cast<uint8_t>(MessageType::kHelloAck)) {
        return Status::Internal(std::string("expected HelloAck, got ") +
                                MessageTypeName(ack->type));
      }
    }
    return Status::OK();
  }

  Status Send(const std::vector<uint8_t>& bytes) {
    return SendAll(fd_.get(), {bytes.data(), bytes.size()});
  }

  /// Next frame, or kDeadlineExceeded on a quiet socket, or IoError once
  /// the daemon closed on us.
  Result<NetFrame> Read() {
    NetFrame frame;
    while (true) {
      KGACC_ASSIGN_OR_RETURN(const bool have, assembler_.Next(&frame));
      if (have) return frame;
      uint8_t buf[4096];
      KGACC_ASSIGN_OR_RETURN(const size_t n,
                             RecvSome(fd_.get(), buf, sizeof(buf)));
      if (n == 0) return Status::IoError("peer: daemon closed connection");
      assembler_.Feed({buf, n});
    }
  }

  /// True when the daemon has closed the connection (EOF or reset).
  bool ReadUntilClosed() {
    for (int i = 0; i < 20; ++i) {
      auto frame = Read();
      if (!frame.ok()) {
        return frame.status().code() != StatusCode::kDeadlineExceeded;
      }
    }
    return false;
  }

 private:
  OwnedFd fd_;
  FrameAssembler assembler_{kDefaultMaxFrameBytes};
};

TEST(AuditDaemonTest, HappyPathMatchesLocalRunByteForByte) {
  const KnowledgeGraph kg = TestKg();
  const EvaluationResult reference = ReferenceRun(kg, 42);

  const std::string dir = TempDir("happy");
  AuditDaemon daemon(DaemonOptions(dir));
  daemon.RegisterKg("kg", &kg);
  ASSERT_TRUE(daemon.Start().ok());

  OpenAuditMsg open;
  open.audit_id = 1;
  open.kg_name = "kg";
  AuditClient client(ClientOptions(daemon.port()));
  uint64_t updates = 0;
  auto report = client.RunAudit(open, [&](const IntervalUpdateMsg& update) {
    ++updates;
    EXPECT_GT(update.annotated_triples, 0u);
    EXPECT_GE(update.upper, update.lower);
  });
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // The subscription delivered one update per step, and the shipped result
  // renders byte-identically to the storeless local run.
  EXPECT_EQ(updates, static_cast<uint64_t>(reference.iterations));
  EXPECT_EQ(RenderedJson("kg", report->design_name, report->result),
            RenderedJson("kg", "SRS", reference));
  EXPECT_GT(report->oracle_calls, 0u);
  EXPECT_FALSE(report->degraded);
  EXPECT_EQ(daemon.stats().sessions_opened.load(), 1u);
  EXPECT_EQ(daemon.stats().sessions_failed.load(), 0u);
  daemon.Stop();
}

TEST(AuditDaemonTest, SanitizedKgNamesNeverShareAStoreFile) {
  // Regression: the store filename maps non-alphanumerics to '_', so "a b"
  // and "a_b" used to alias onto one WAL file — two AnnotationStore
  // instances over one log with separate stdio buffers, i.e. interleaved
  // frames and corruption. The hash suffix keeps the mapping injective:
  // distinct registered names get distinct files and audit independently.
  const KnowledgeGraph kg = TestKg();
  const std::string dir = TempDir("aliasing");
  AuditDaemon daemon(DaemonOptions(dir));
  daemon.RegisterKg("a b", &kg);
  daemon.RegisterKg("a_b", &kg);
  ASSERT_TRUE(daemon.Start().ok());

  OpenAuditMsg open;
  open.audit_id = 1;
  open.kg_name = "a b";
  AuditClient first(ClientOptions(daemon.port()));
  auto report1 = first.RunAudit(open);
  ASSERT_TRUE(report1.ok()) << report1.status().ToString();

  open.audit_id = 2;
  open.kg_name = "a_b";
  AuditClient second(ClientOptions(daemon.port()));
  auto report2 = second.RunAudit(open);
  ASSERT_TRUE(report2.ok()) << report2.status().ToString();
  // The stores are independent: the second KG repaid nothing from the
  // first one's labels (they are different namespaces, whatever the
  // sanitized name says).
  EXPECT_GT(report2->oracle_calls, 0u);
  daemon.Stop();

  // Exactly one per-KG store each (plus the daemon's tenant quota ledger,
  // which is not a KG namespace).
  size_t kg_wal_files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".wal") continue;
    kg_wal_files +=
        entry.path().filename().string().rfind("kg_", 0) == 0 ? 1 : 0;
  }
  EXPECT_EQ(kg_wal_files, 2u);
  EXPECT_TRUE(std::filesystem::exists(dir + "/tenant_ledger.wal"));
}

TEST(AuditDaemonTest, ReopeningAFinishedAuditRepaysNothing) {
  const KnowledgeGraph kg = TestKg();
  const std::string dir = TempDir("reopen");
  AuditDaemon daemon(DaemonOptions(dir));
  daemon.RegisterKg("kg", &kg);
  ASSERT_TRUE(daemon.Start().ok());

  OpenAuditMsg open;
  open.audit_id = 9;
  open.kg_name = "kg";
  AuditClient first(ClientOptions(daemon.port()));
  auto report1 = first.RunAudit(open);
  ASSERT_TRUE(report1.ok()) << report1.status().ToString();
  ASSERT_GT(report1->oracle_calls, 0u);

  // Same audit id, same store: the daemon resumes the finished session to
  // its end state and replays the report — zero oracle spend.
  AuditClient second(ClientOptions(daemon.port()));
  auto report2 = second.RunAudit(open);
  ASSERT_TRUE(report2.ok()) << report2.status().ToString();
  EXPECT_TRUE(second.stats().opened.resumed);
  EXPECT_GT(second.stats().opened.labels_on_file, 0u);
  EXPECT_EQ(report2->oracle_calls, 0u);
  EXPECT_EQ(report2->store_hits, 0u);
  EXPECT_EQ(RenderedJson("kg", report1->design_name, report1->result),
            RenderedJson("kg", report2->design_name, report2->result));
  daemon.Stop();
}

TEST(AuditDaemonTest, DaemonRestartMidAuditResumesByteIdentical) {
  const KnowledgeGraph kg = TestKg();
  const EvaluationResult reference = ReferenceRun(kg, 42);
  ASSERT_GE(reference.iterations, 4);
  const std::string dir = TempDir("restart");

  OpenAuditMsg open;
  open.audit_id = 5;
  open.kg_name = "kg";

  // Leg 1: a step budget stops the session halfway — the session fails
  // with kDeadlineExceeded (explicitly, to the client) but its labels and
  // checkpoint are durable. Then the daemon goes away entirely.
  {
    AuditDaemon daemon(DaemonOptions(dir));
    daemon.RegisterKg("kg", &kg);
    ASSERT_TRUE(daemon.Start().ok());
    OpenAuditMsg budgeted = open;
    budgeted.max_steps = static_cast<uint64_t>(reference.iterations) / 2;
    AuditClient client(ClientOptions(daemon.port()));
    auto report = client.RunAudit(budgeted);
    ASSERT_FALSE(report.ok());
    EXPECT_EQ(report.status().code(), StatusCode::kDeadlineExceeded);
    EXPECT_EQ(daemon.stats().deadline_exceeded.load(), 1u);
    EXPECT_EQ(daemon.stats().sessions_failed.load(), 0u);  // budget != bug
    daemon.Stop();
  }

  // Leg 2: a fresh daemon process-equivalent over the same store resumes
  // the audit (no budget this time) to the byte-identical reference.
  {
    AuditDaemon daemon(DaemonOptions(dir));
    daemon.RegisterKg("kg", &kg);
    ASSERT_TRUE(daemon.Start().ok());
    AuditClient client(ClientOptions(daemon.port()));
    auto report = client.RunAudit(open);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(client.stats().opened.resumed);
    EXPECT_GT(client.stats().opened.start_step, 0u);
    EXPECT_GT(client.stats().opened.labels_on_file, 0u);
    // The resumed leg pays only the not-yet-labeled triples.
    EXPECT_LT(report->oracle_calls,
              static_cast<uint64_t>(reference.annotated_triples));
    EXPECT_EQ(RenderedJson("kg", report->design_name, report->result),
              RenderedJson("kg", "SRS", reference));
    EXPECT_EQ(daemon.stats().sessions_resumed.load(), 1u);
    daemon.Stop();
  }
}

TEST(AuditDaemonTest, SessionLimitAnswersBusyNeverHangs) {
  const KnowledgeGraph kg = TestKg();
  const std::string dir = TempDir("busy");
  auto options = DaemonOptions(dir);
  options.max_sessions = 1;
  AuditDaemon daemon(options);
  daemon.RegisterKg("kg", &kg);
  ASSERT_TRUE(daemon.Start().ok());

  TestPeer peer;
  ASSERT_TRUE(peer.Connect(daemon.port()).ok());
  OpenAuditMsg first;
  first.audit_id = 1;
  first.kg_name = "kg";
  ASSERT_TRUE(
      peer.Send(FrameOf(MessageType::kOpenAudit, EncodeOpenAudit, first))
          .ok());
  auto opened = peer.Read();
  ASSERT_TRUE(opened.ok());
  ASSERT_EQ(opened->type, static_cast<uint8_t>(MessageType::kAuditOpened));

  OpenAuditMsg second = first;
  second.audit_id = 2;  // a *different* session: over the limit
  ASSERT_TRUE(
      peer.Send(FrameOf(MessageType::kOpenAudit, EncodeOpenAudit, second))
          .ok());
  auto busy = peer.Read();
  ASSERT_TRUE(busy.ok());
  ASSERT_EQ(busy->type, static_cast<uint8_t>(MessageType::kBusy));
  auto msg = DecodeBusy({busy->payload.data(), busy->payload.size()});
  ASSERT_TRUE(msg.ok());
  EXPECT_GT(msg->retry_after_ms, 0u);
  EXPECT_FALSE(msg->reason.empty());
  EXPECT_GE(daemon.stats().busy_rejections.load(), 1u);
  daemon.Stop();
}

TEST(AuditDaemonTest, UnknownKgIsAnExplicitNotFoundError) {
  const KnowledgeGraph kg = TestKg();
  const std::string dir = TempDir("notfound");
  AuditDaemon daemon(DaemonOptions(dir));
  daemon.RegisterKg("kg", &kg);
  ASSERT_TRUE(daemon.Start().ok());

  OpenAuditMsg open;
  open.audit_id = 1;
  open.kg_name = "no-such-population";
  AuditClient client(ClientOptions(daemon.port()));
  auto report = client.RunAudit(open);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kNotFound);
  daemon.Stop();
}

TEST(AuditDaemonTest, FramesBeforeHelloFailTheConnection) {
  const KnowledgeGraph kg = TestKg();
  const std::string dir = TempDir("hello_first");
  AuditDaemon daemon(DaemonOptions(dir));
  daemon.RegisterKg("kg", &kg);
  ASSERT_TRUE(daemon.Start().ok());

  TestPeer peer;
  ASSERT_TRUE(peer.Connect(daemon.port(), /*hello=*/false).ok());
  HeartbeatMsg probe;
  probe.nonce = 1;
  ASSERT_TRUE(
      peer.Send(FrameOf(MessageType::kHeartbeat, EncodeHeartbeat, probe))
          .ok());
  auto reply = peer.Read();
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->type, static_cast<uint8_t>(MessageType::kError));
  auto err = DecodeError({reply->payload.data(), reply->payload.size()});
  ASSERT_TRUE(err.ok());
  EXPECT_TRUE(err->fatal_to_connection);
  EXPECT_TRUE(peer.ReadUntilClosed());
  daemon.Stop();
}

TEST(AuditDaemonTest, GarbageBytesFailTheConnectionNotTheDaemon) {
  const KnowledgeGraph kg = TestKg();
  const std::string dir = TempDir("garbage");
  AuditDaemon daemon(DaemonOptions(dir));
  daemon.RegisterKg("kg", &kg);
  ASSERT_TRUE(daemon.Start().ok());

  TestPeer vandal;
  ASSERT_TRUE(vandal.Connect(daemon.port()).ok());
  std::vector<uint8_t> garbage(256);
  for (size_t i = 0; i < garbage.size(); ++i) {
    garbage[i] = static_cast<uint8_t>(0xA5 ^ (i * 13));
  }
  ASSERT_TRUE(vandal.Send(garbage).ok());
  EXPECT_TRUE(vandal.ReadUntilClosed());
  EXPECT_GE(daemon.stats().connections_failed.load(), 1u);

  // The daemon shrugged it off: a well-behaved audit still completes.
  OpenAuditMsg open;
  open.audit_id = 3;
  open.kg_name = "kg";
  AuditClient client(ClientOptions(daemon.port()));
  auto report = client.RunAudit(open);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  daemon.Stop();
}

TEST(AuditDaemonTest, HeartbeatsAckedAndDropFailpointIsCountedNotFatal) {
  const KnowledgeGraph kg = TestKg();
  const std::string dir = TempDir("heartbeat");
  AuditDaemon daemon(DaemonOptions(dir));
  daemon.RegisterKg("kg", &kg);
  ASSERT_TRUE(daemon.Start().ok());

  TestPeer peer;
  ASSERT_TRUE(peer.Connect(daemon.port()).ok());
  HeartbeatMsg probe;
  probe.nonce = 7;
  ASSERT_TRUE(
      peer.Send(FrameOf(MessageType::kHeartbeat, EncodeHeartbeat, probe))
          .ok());
  auto ack = peer.Read();
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  ASSERT_EQ(ack->type, static_cast<uint8_t>(MessageType::kHeartbeatAck));
  auto decoded =
      DecodeHeartbeat({ack->payload.data(), ack->payload.size()});
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->nonce, 7u);
  EXPECT_EQ(daemon.stats().heartbeats_acked.load(), 1u);

  {
    ScopedFailpoints fp("net.heartbeat.drop=once");
    ASSERT_TRUE(fp.status().ok());
    probe.nonce = 8;
    ASSERT_TRUE(
        peer.Send(FrameOf(MessageType::kHeartbeat, EncodeHeartbeat, probe))
            .ok());
    auto dropped = peer.Read();  // nothing comes back
    ASSERT_FALSE(dropped.ok());
    EXPECT_EQ(dropped.status().code(), StatusCode::kDeadlineExceeded);
    EXPECT_EQ(daemon.stats().heartbeat_acks_dropped.load(), 1u);
    EXPECT_GE(daemon.stats().faults_injected.load(), 1u);
  }

  // Disarmed: liveness is back, same connection.
  probe.nonce = 9;
  ASSERT_TRUE(
      peer.Send(FrameOf(MessageType::kHeartbeat, EncodeHeartbeat, probe))
          .ok());
  ack = peer.Read();
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  EXPECT_EQ(ack->type, static_cast<uint8_t>(MessageType::kHeartbeatAck));
  daemon.Stop();
}

TEST(AuditDaemonTest, TornReadFailpointCostsOneConnectionAuditStillLands) {
  const KnowledgeGraph kg = TestKg();
  const EvaluationResult reference = ReferenceRun(kg, 42);
  const std::string dir = TempDir("torn");
  AuditDaemon daemon(DaemonOptions(dir));
  daemon.RegisterKg("kg", &kg);
  ASSERT_TRUE(daemon.Start().ok());

  ScopedFailpoints fp("net.read.torn=once");
  ASSERT_TRUE(fp.status().ok());
  OpenAuditMsg open;
  open.audit_id = 6;
  open.kg_name = "kg";
  AuditClient client(ClientOptions(daemon.port()));
  auto report = client.RunAudit(open);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // The injected bit flip killed exactly one connection (CRC caught it);
  // the client rebuilt and the audit finished on the reference bytes.
  EXPECT_GE(daemon.stats().faults_injected.load(), 1u);
  EXPECT_GE(daemon.stats().connections_failed.load(), 1u);
  EXPECT_EQ(RenderedJson("kg", report->design_name, report->result),
            RenderedJson("kg", "SRS", reference));
  daemon.Stop();
}

TEST(AuditDaemonTest, GracefulDrainCheckpointsAndResumesElsewhere) {
  const KnowledgeGraph kg = TestKg();
  const EvaluationResult reference = ReferenceRun(kg, 42);
  const std::string dir = TempDir("drain");

  // A raw peer runs a few steps, then the daemon drains underneath it.
  {
    AuditDaemon daemon(DaemonOptions(dir));
    daemon.RegisterKg("kg", &kg);
    ASSERT_TRUE(daemon.Start().ok());
    TestPeer peer;
    ASSERT_TRUE(peer.Connect(daemon.port()).ok());
    OpenAuditMsg open;
    open.audit_id = 8;
    open.kg_name = "kg";
    ASSERT_TRUE(
        peer.Send(FrameOf(MessageType::kOpenAudit, EncodeOpenAudit, open))
            .ok());
    auto opened = peer.Read();
    ASSERT_TRUE(opened.ok());
    ASSERT_EQ(opened->type, static_cast<uint8_t>(MessageType::kAuditOpened));
    StepBatchMsg batch;
    batch.audit_id = 8;
    batch.steps = 2;
    ASSERT_TRUE(
        peer.Send(FrameOf(MessageType::kStepBatch, EncodeStepBatch, batch))
            .ok());
    for (int i = 0; i < 2; ++i) {
      auto update = peer.Read();
      ASSERT_TRUE(update.ok()) << update.status().ToString();
      ASSERT_EQ(update->type,
                static_cast<uint8_t>(MessageType::kIntervalUpdate));
    }

    daemon.RequestDrain();
    // The peer is told, then the connection closes; Stop() returns — no
    // hang waiting on the abandoned session, which checkpointed instead.
    bool saw_drain = false;
    for (int i = 0; i < 20; ++i) {
      auto frame = peer.Read();
      if (!frame.ok()) break;
      if (frame->type == static_cast<uint8_t>(MessageType::kDrain)) {
        saw_drain = true;
      }
    }
    EXPECT_TRUE(saw_drain);
    daemon.Wait();
  }

  // The drained checkpoint is a full resume point: a second daemon over
  // the same store finishes the audit on the reference bytes.
  {
    AuditDaemon daemon(DaemonOptions(dir));
    daemon.RegisterKg("kg", &kg);
    ASSERT_TRUE(daemon.Start().ok());
    OpenAuditMsg open;
    open.audit_id = 8;
    open.kg_name = "kg";
    AuditClient client(ClientOptions(daemon.port()));
    auto report = client.RunAudit(open);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(client.stats().opened.resumed);
    EXPECT_EQ(client.stats().opened.start_step, 2u);
    EXPECT_EQ(RenderedJson("kg", report->design_name, report->result),
              RenderedJson("kg", "SRS", reference));
    daemon.Stop();
  }
}

TEST(AuditDaemonTest, DrainingDaemonAnswersBusyAtOpen) {
  const KnowledgeGraph kg = TestKg();
  const std::string dir = TempDir("drain_busy");
  AuditDaemon daemon(DaemonOptions(dir));
  daemon.RegisterKg("kg", &kg);
  ASSERT_TRUE(daemon.Start().ok());
  const uint16_t port = daemon.port();
  daemon.RequestDrain();
  daemon.Wait();

  // With the daemon gone, a client with a tight budget gives up with an
  // explicit transport error — never a hang.
  OpenAuditMsg open;
  open.audit_id = 1;
  open.kg_name = "kg";
  auto options = ClientOptions(port);
  options.max_reconnects = 1;
  options.backoff.max_attempts = 2;
  AuditClient client(options);
  auto report = client.RunAudit(open);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace kgacc
