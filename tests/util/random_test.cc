#include "kgacc/util/random.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace kgacc {
namespace {

TEST(Mix64Test, IsDeterministic) {
  EXPECT_EQ(Mix64(12345), Mix64(12345));
  EXPECT_NE(Mix64(12345), Mix64(12346));
}

TEST(Mix64Test, AvalanchesLowBits) {
  // Flipping one input bit should flip roughly half the output bits.
  int total_flips = 0;
  const int trials = 64;
  for (int bit = 0; bit < trials; ++bit) {
    const uint64_t a = Mix64(0x1234567890abcdefULL);
    const uint64_t b = Mix64(0x1234567890abcdefULL ^ (uint64_t{1} << bit));
    total_flips += __builtin_popcountll(a ^ b);
  }
  const double avg = static_cast<double>(total_flips) / trials;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(ToUnitDoubleTest, StaysInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = ToUnitDouble(rng.Next());
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, SameSeedSameStream) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.Next() == b.Next()) ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng rng(5);
  const uint64_t first = rng.Next();
  rng.Next();
  rng.Reseed(5);
  EXPECT_EQ(rng.Next(), first);
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(42);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversRangeUniformly) {
  Rng rng(17);
  const uint64_t k = 10;
  std::vector<int> counts(k, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(k)];
  for (uint64_t i = 0; i < k; ++i) {
    EXPECT_NEAR(counts[i], n / static_cast<double>(k), 500.0);
  }
}

TEST(RngTest, UniformIntOfOneIsZero) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.UniformInt(1), 0u);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(RngTest, NormalHasUnitMoments) {
  Rng rng(23);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, GammaMeanMatchesShape) {
  Rng rng(31);
  for (const double shape : {0.5, 1.0, 2.5, 10.0}) {
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) sum += rng.Gamma(shape);
    EXPECT_NEAR(sum / n, shape, 0.08 * shape + 0.02) << "shape=" << shape;
  }
}

TEST(RngTest, BetaMeanMatchesParameters) {
  Rng rng(37);
  const double a = 2.0, b = 5.0;
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Beta(a, b);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, a / (a + b), 0.01);
}

TEST(SampleWithoutReplacementTest, ProducesDistinctIndices) {
  Rng rng(41);
  const auto sample = SampleWithoutReplacement(100, 30, &rng);
  ASSERT_EQ(sample.size(), 30u);
  std::set<uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (uint64_t x : sample) EXPECT_LT(x, 100u);
}

TEST(SampleWithoutReplacementTest, FullDrawIsPermutation) {
  Rng rng(43);
  const auto sample = SampleWithoutReplacement(10, 10, &rng);
  std::set<uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(SampleWithoutReplacementTest, ZeroDrawIsEmpty) {
  Rng rng(47);
  EXPECT_TRUE(SampleWithoutReplacement(5, 0, &rng).empty());
}

TEST(SampleWithoutReplacementTest, EveryElementEquallyLikely) {
  Rng rng(53);
  const uint64_t n = 20, k = 5;
  std::vector<int> counts(n, 0);
  const int reps = 40000;
  for (int r = 0; r < reps; ++r) {
    for (uint64_t x : SampleWithoutReplacement(n, k, &rng)) ++counts[x];
  }
  const double expected = reps * static_cast<double>(k) / n;
  for (uint64_t i = 0; i < n; ++i) {
    EXPECT_NEAR(counts[i], expected, 0.06 * expected) << "index " << i;
  }
}

TEST(AliasTableTest, MatchesWeightsEmpirically) {
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  AliasTable table(weights);
  ASSERT_EQ(table.size(), 4u);
  Rng rng(61);
  std::vector<int> counts(4, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[table.Sample(&rng)];
  for (size_t i = 0; i < weights.size(); ++i) {
    const double expected = n * weights[i] / 10.0;
    EXPECT_NEAR(counts[i], expected, 0.03 * expected + 100) << "bucket " << i;
  }
}

TEST(AliasTableTest, NormalizedProbabilities) {
  AliasTable table({2.0, 6.0});
  EXPECT_DOUBLE_EQ(table.probability(0), 0.25);
  EXPECT_DOUBLE_EQ(table.probability(1), 0.75);
}

TEST(AliasTableTest, ZeroWeightNeverSampled) {
  AliasTable table({0.0, 1.0, 0.0});
  Rng rng(67);
  for (int i = 0; i < 10000; ++i) EXPECT_EQ(table.Sample(&rng), 1u);
}

TEST(AliasTableTest, SingleOutcome) {
  AliasTable table({5.0});
  Rng rng(71);
  EXPECT_EQ(table.Sample(&rng), 0u);
}

TEST(AliasTableTest, ManyUniformWeightsStayUniform) {
  std::vector<double> weights(1000, 1.0);
  AliasTable table(weights);
  Rng rng(73);
  std::vector<int> counts(1000, 0);
  const int n = 1000000;
  for (int i = 0; i < n; ++i) ++counts[table.Sample(&rng)];
  const auto [mn, mx] = std::minmax_element(counts.begin(), counts.end());
  EXPECT_GT(*mn, 700);
  EXPECT_LT(*mx, 1350);
}

}  // namespace
}  // namespace kgacc
