// Codec round trips: every primitive must survive write→read bit-exact,
// and every malformed input (truncation, overlong varints) must surface as
// a status, never as garbage or UB. The fuzz-style cases drive randomized
// typed record streams through a full round trip — the property the WAL
// and snapshot layers inherit.

#include "kgacc/util/codec.h"

#include <cmath>
#include <limits>
#include <vector>

#include "kgacc/util/random.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

TEST(CodecTest, VarintBoundaryRoundTrips) {
  const uint64_t values[] = {0,
                             1,
                             127,
                             128,
                             16383,
                             16384,
                             (uint64_t{1} << 32) - 1,
                             uint64_t{1} << 32,
                             uint64_t{1} << 63,
                             std::numeric_limits<uint64_t>::max()};
  ByteWriter w;
  for (const uint64_t v : values) w.PutVarint(v);
  ByteReader r(w.span());
  for (const uint64_t v : values) {
    const auto got = r.Varint();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
  EXPECT_TRUE(r.empty());
}

TEST(CodecTest, ZigzagBoundaryRoundTrips) {
  const int64_t values[] = {0,
                            -1,
                            1,
                            -64,
                            63,
                            std::numeric_limits<int64_t>::min(),
                            std::numeric_limits<int64_t>::max()};
  ByteWriter w;
  for (const int64_t v : values) w.PutZigzag(v);
  ByteReader r(w.span());
  for (const int64_t v : values) {
    const auto got = r.Zigzag();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
}

TEST(CodecTest, SmallMagnitudesEncodeSmall) {
  ByteWriter w;
  w.PutVarint(5);
  EXPECT_EQ(w.size(), 1u);
  w.Clear();
  w.PutZigzag(-3);
  EXPECT_EQ(w.size(), 1u);
}

TEST(CodecTest, DoubleRoundTripsAreBitExact) {
  const double values[] = {0.0,
                           -0.0,
                           1.0,
                           -1.0 / 3.0,
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN(),
                           6.02214076e23};
  ByteWriter w;
  for (const double v : values) w.PutDouble(v);
  ByteReader r(w.span());
  for (const double v : values) {
    const auto got = r.Double();
    ASSERT_TRUE(got.ok());
    uint64_t want_bits, got_bits;
    std::memcpy(&want_bits, &v, sizeof(v));
    std::memcpy(&got_bits, &*got, sizeof(*got));
    EXPECT_EQ(got_bits, want_bits);  // Bitwise, so NaN and -0.0 count too.
  }
}

TEST(CodecTest, StringsAndLengthPrefixedBytes) {
  ByteWriter w;
  w.PutString("TWCS");
  w.PutString("");
  const std::vector<uint8_t> blob = {0x00, 0xff, 0x80, 0x7f};
  w.PutLengthPrefixed({blob.data(), blob.size()});
  ByteReader r(w.span());
  auto s1 = r.String();
  ASSERT_TRUE(s1.ok());
  EXPECT_EQ(*s1, "TWCS");
  auto s2 = r.String();
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*s2, "");
  auto raw = r.LengthPrefixed();
  ASSERT_TRUE(raw.ok());
  ASSERT_EQ(raw->size(), blob.size());
  EXPECT_TRUE(std::equal(raw->begin(), raw->end(), blob.begin()));
  EXPECT_TRUE(r.empty());
}

TEST(CodecTest, FuzzRandomRecordStreamsRoundTrip) {
  // Randomized typed records: interleave every primitive in random order
  // and length, write, read back, compare. 64 records per round, many
  // rounds — the layout bugs this catches (mis-ordered fields, wrong
  // widths) are exactly the snapshot-layer failure modes.
  Rng rng(20250729);
  for (int round = 0; round < 200; ++round) {
    struct Record {
      int type;
      uint64_t u;
      int64_t z;
      double d;
      std::string s;
    };
    std::vector<Record> records;
    ByteWriter w;
    const int n = 1 + static_cast<int>(rng.UniformInt(64));
    for (int i = 0; i < n; ++i) {
      Record rec;
      rec.type = static_cast<int>(rng.UniformInt(5));
      switch (rec.type) {
        case 0:
          rec.u = rng.Next() >> rng.UniformInt(64);
          w.PutVarint(rec.u);
          break;
        case 1:
          rec.z = static_cast<int64_t>(rng.Next()) >>
                  static_cast<int>(rng.UniformInt(64));
          w.PutZigzag(rec.z);
          break;
        case 2:
          rec.d = rng.Normal() * std::exp(rng.Uniform(-300.0, 300.0));
          w.PutDouble(rec.d);
          break;
        case 3:
          rec.u = rng.Next();
          w.PutFixed64(rec.u);
          break;
        case 4: {
          const size_t len = rng.UniformInt(32);
          rec.s.resize(len);
          for (size_t c = 0; c < len; ++c) {
            rec.s[c] = static_cast<char>(rng.UniformInt(256));
          }
          w.PutString(rec.s);
          break;
        }
      }
      records.push_back(rec);
    }
    ByteReader r(w.span());
    for (const Record& rec : records) {
      switch (rec.type) {
        case 0: {
          auto got = r.Varint();
          ASSERT_TRUE(got.ok());
          EXPECT_EQ(*got, rec.u);
          break;
        }
        case 1: {
          auto got = r.Zigzag();
          ASSERT_TRUE(got.ok());
          EXPECT_EQ(*got, rec.z);
          break;
        }
        case 2: {
          auto got = r.Double();
          ASSERT_TRUE(got.ok());
          EXPECT_EQ(*got, rec.d);
          break;
        }
        case 3: {
          auto got = r.Fixed64();
          ASSERT_TRUE(got.ok());
          EXPECT_EQ(*got, rec.u);
          break;
        }
        case 4: {
          auto got = r.String();
          ASSERT_TRUE(got.ok());
          EXPECT_EQ(*got, rec.s);
          break;
        }
      }
    }
    EXPECT_TRUE(r.empty());
  }
}

TEST(CodecTest, TruncatedReadsFailCleanlyAtEveryPrefix) {
  ByteWriter w;
  w.PutVarint(1u << 20);
  w.PutDouble(3.14);
  w.PutString("abcdef");
  w.PutFixed32(42);
  // Every strict prefix must yield at least one error and never read past
  // the end; the full buffer must parse.
  for (size_t cut = 0; cut < w.size(); ++cut) {
    ByteReader r(w.span().subspan(0, cut));
    bool failed = false;
    failed |= !r.Varint().ok();
    failed |= !r.Double().ok();
    failed |= !r.String().ok();
    failed |= !r.Fixed32().ok();
    EXPECT_TRUE(failed) << "prefix of " << cut << " bytes parsed fully";
  }
  ByteReader full(w.span());
  EXPECT_TRUE(full.Varint().ok());
  EXPECT_TRUE(full.Double().ok());
  EXPECT_TRUE(full.String().ok());
  EXPECT_TRUE(full.Fixed32().ok());
  EXPECT_TRUE(full.empty());
}

TEST(CodecTest, OverlongVarintRejected) {
  // 11 continuation bytes: no canonical uint64 encodes this long.
  const std::vector<uint8_t> overlong(11, 0x80);
  ByteReader r({overlong.data(), overlong.size()});
  EXPECT_FALSE(r.Varint().ok());
  // 10 bytes whose final group carries bits beyond 2^64.
  std::vector<uint8_t> overflow(10, 0xff);
  overflow[9] = 0x7f;
  ByteReader r2({overflow.data(), overflow.size()});
  EXPECT_FALSE(r2.Varint().ok());
}

TEST(CodecTest, LengthPrefixLargerThanBufferRejected) {
  ByteWriter w;
  w.PutVarint(1000);  // Claims 1000 bytes; none follow.
  ByteReader r(w.span());
  EXPECT_FALSE(r.LengthPrefixed().ok());
}

TEST(CodecTest, Crc32cKnownVectorsAndSensitivity) {
  // RFC 3720 test vector: CRC32C of 32 zero bytes.
  const std::vector<uint8_t> zeros(32, 0);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8a9136aau);
  // "123456789" — the classic check value.
  const char digits[] = "123456789";
  EXPECT_EQ(Crc32c(digits, 9), 0xe3069283u);
  // Every single-bit flip must change the checksum.
  std::vector<uint8_t> buf(16, 0xa5);
  const uint32_t base = Crc32c(buf.data(), buf.size());
  for (size_t byte = 0; byte < buf.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      buf[byte] ^= uint8_t(1) << bit;
      EXPECT_NE(Crc32c(buf.data(), buf.size()), base);
      buf[byte] ^= uint8_t(1) << bit;
    }
  }
  // Chaining across fragments equals one pass.
  EXPECT_EQ(Crc32c(buf.data() + 4, buf.size() - 4,
                   Crc32c(buf.data(), 4)),
            base);
}

}  // namespace
}  // namespace kgacc
