// Failpoint subsystem semantics: spec parsing is transactional, every
// policy fires on its documented schedule, schedules are deterministic
// (seeded), and an unarmed process pays one atomic load per site.

#include "kgacc/util/failpoint.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace kgacc {
namespace {

class FailpointTest : public testing::Test {
 protected:
  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }
};

TEST_F(FailpointTest, UnarmedPointNeverFires) {
  EXPECT_FALSE(FailpointHit("test.nothing"));
  EXPECT_FALSE(FailpointHit("test.nothing"));
  const FailpointStats stats =
      FailpointRegistry::Instance().Stats("test.nothing");
  EXPECT_EQ(stats.evaluations, 0u);
  EXPECT_EQ(stats.failures, 0u);
}

TEST_F(FailpointTest, OnceFiresExactlyOnceThenHeals) {
  ASSERT_TRUE(FailpointRegistry::Instance().ArmOne("test.once", "once").ok());
  EXPECT_TRUE(FailpointHit("test.once"));
  EXPECT_FALSE(FailpointHit("test.once"));
  EXPECT_FALSE(FailpointHit("test.once"));
  const FailpointStats stats = FailpointRegistry::Instance().Stats("test.once");
  EXPECT_EQ(stats.evaluations, 3u);
  EXPECT_EQ(stats.failures, 1u);
}

TEST_F(FailpointTest, TimesFiresOnTheFirstNEvaluations) {
  ASSERT_TRUE(
      FailpointRegistry::Instance().ArmOne("test.times", "times:3").ok());
  int fired = 0;
  for (int i = 0; i < 10; ++i) fired += FailpointHit("test.times") ? 1 : 0;
  EXPECT_EQ(fired, 3);
}

TEST_F(FailpointTest, EveryFiresOnEveryNth) {
  ASSERT_TRUE(
      FailpointRegistry::Instance().ArmOne("test.every", "every:3").ok());
  std::vector<bool> hits;
  for (int i = 0; i < 9; ++i) hits.push_back(FailpointHit("test.every"));
  const std::vector<bool> expected = {false, false, true, false, false,
                                      true,  false, false, true};
  EXPECT_EQ(hits, expected);
}

TEST_F(FailpointTest, ProbIsDeterministicGivenTheSeed) {
  auto run_schedule = [] {
    ScopedFailpoints armed("test.prob=prob:0.5:seed:1234");
    EXPECT_TRUE(armed.status().ok());
    std::vector<bool> hits;
    for (int i = 0; i < 64; ++i) hits.push_back(FailpointHit("test.prob"));
    return hits;
  };
  const std::vector<bool> first = run_schedule();
  const std::vector<bool> second = run_schedule();
  EXPECT_EQ(first, second);
  // p = 0.5 over 64 draws: both outcomes must occur (the chance of a
  // constant schedule is 2^-63).
  int fired = 0;
  for (const bool hit : first) fired += hit ? 1 : 0;
  EXPECT_GT(fired, 0);
  EXPECT_LT(fired, 64);
}

TEST_F(FailpointTest, ProbZeroNeverFiresProbOneAlwaysFires) {
  ASSERT_TRUE(FailpointRegistry::Instance()
                  .Arm("test.p0=prob:0;test.p1=prob:1")
                  .ok());
  for (int i = 0; i < 32; ++i) {
    EXPECT_FALSE(FailpointHit("test.p0"));
    EXPECT_TRUE(FailpointHit("test.p1"));
  }
}

TEST_F(FailpointTest, SleepInjectsLatencyButNeverFails) {
  ASSERT_TRUE(
      FailpointRegistry::Instance().ArmOne("test.sleep", "sleep:1").ok());
  EXPECT_FALSE(FailpointHit("test.sleep"));
  const FailpointStats stats =
      FailpointRegistry::Instance().Stats("test.sleep");
  EXPECT_EQ(stats.evaluations, 1u);
  EXPECT_EQ(stats.failures, 0u);
}

TEST_F(FailpointTest, MultiPointSpecArmsEveryEntry) {
  ASSERT_TRUE(FailpointRegistry::Instance()
                  .Arm("a.one=once;b.two=every:2;c.three=sleep:0")
                  .ok());
  const std::vector<std::string> armed =
      FailpointRegistry::Instance().ArmedNames();
  EXPECT_EQ(armed, (std::vector<std::string>{"a.one", "b.two", "c.three"}));
}

TEST_F(FailpointTest, MalformedSpecIsRejectedTransactionally) {
  // The valid head must not arm when the tail is garbage.
  const Status bad =
      FailpointRegistry::Instance().Arm("good.point=once;bad.point=banana:7");
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(FailpointRegistry::Instance().ArmedNames().empty());
  EXPECT_FALSE(FailpointHit("good.point"));

  for (const char* spec :
       {"noequals", "=policy", "name=", "p=prob:1.5", "p=prob:0.5:seed:x",
        "p=times:0", "p=every:-1", "p=sleep:-2", "p=off:3"}) {
    EXPECT_EQ(FailpointRegistry::Instance().Arm(spec).code(),
              StatusCode::kInvalidArgument)
        << "spec not rejected: " << spec;
  }
}

TEST_F(FailpointTest, OffAndDisarmStopTheSchedule) {
  ASSERT_TRUE(
      FailpointRegistry::Instance().ArmOne("test.off", "every:1").ok());
  EXPECT_TRUE(FailpointHit("test.off"));
  ASSERT_TRUE(FailpointRegistry::Instance().ArmOne("test.off", "off").ok());
  EXPECT_FALSE(FailpointHit("test.off"));

  ASSERT_TRUE(
      FailpointRegistry::Instance().ArmOne("test.dis", "every:1").ok());
  EXPECT_TRUE(FailpointHit("test.dis"));
  FailpointRegistry::Instance().Disarm("test.dis");
  EXPECT_FALSE(FailpointHit("test.dis"));
}

TEST_F(FailpointTest, ScopedFailpointsDisarmOnExit) {
  {
    ScopedFailpoints armed("test.scoped=every:1");
    ASSERT_TRUE(armed.status().ok());
    EXPECT_TRUE(FailpointHit("test.scoped"));
  }
  EXPECT_FALSE(FailpointHit("test.scoped"));
  EXPECT_TRUE(FailpointRegistry::Instance().ArmedNames().empty());
}

}  // namespace
}  // namespace kgacc
