#include "kgacc/util/status.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, NamedConstructorsCarryCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveDistinctNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNumericError), "NumericError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "Unimplemented");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> ok(7);
  Result<int> err(Status::Internal("boom"));
  EXPECT_EQ(ok.value_or(-1), 7);
  EXPECT_EQ(err.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyTypesWork) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

Status FailingHelper() { return Status::IoError("disk"); }

Status UsesReturnIfError() {
  KGACC_RETURN_IF_ERROR(FailingHelper());
  return Status::OK();
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  const Status s = UsesReturnIfError();
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

Result<int> ProducesValue() { return 10; }

Status UsesAssignOrReturn(int* out) {
  KGACC_ASSIGN_OR_RETURN(const int v, ProducesValue());
  *out = v + 1;
  return Status::OK();
}

TEST(StatusMacrosTest, AssignOrReturnBindsValue) {
  int out = 0;
  ASSERT_TRUE(UsesAssignOrReturn(&out).ok());
  EXPECT_EQ(out, 11);
}

Result<int> ProducesError() { return Status::OutOfRange("nope"); }

Status UsesAssignOrReturnError() {
  KGACC_ASSIGN_OR_RETURN(const int v, ProducesError());
  (void)v;
  return Status::OK();
}

TEST(StatusMacrosTest, AssignOrReturnPropagatesError) {
  EXPECT_EQ(UsesAssignOrReturnError().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace kgacc
