#include "kgacc/util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace kgacc {
namespace {

TEST(TaskRingTest, FifoOrderThroughGrowth) {
  TaskRing ring;
  std::vector<int> order;
  // Push past several doublings so the rotated-rebuild path runs.
  for (int i = 0; i < 100; ++i) {
    ring.PushBack([&order, i] { order.push_back(i); });
  }
  EXPECT_EQ(ring.size(), 100u);
  while (!ring.empty()) ring.PopFront()();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(TaskRingTest, PopBackTakesNewestPopFrontTakesOldest) {
  TaskRing ring;
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    ring.PushBack([&order, i] { order.push_back(i); });
  }
  ring.PopBack()();   // 3: the steal end.
  ring.PopFront()();  // 0: the owner end.
  ring.PopBack()();   // 2
  ring.PopFront()();  // 1
  EXPECT_EQ(order, (std::vector<int>{3, 0, 2, 1}));
}

TEST(TaskRingTest, WrapAroundKeepsOrder) {
  TaskRing ring;
  std::vector<int> order;
  // Interleave pushes and pops so head_ walks around the slot array and
  // the live window straddles the wrap point repeatedly.
  int next = 0;
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 3; ++i) {
      ring.PushBack([&order, v = next] { order.push_back(v); });
      ++next;
    }
    ring.PopFront()();
    ring.PopFront()();
  }
  while (!ring.empty()) ring.PopFront()();
  ASSERT_EQ(order.size(), static_cast<size_t>(next));
  for (int i = 0; i < next; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // Must not hang.
  SUCCEED();
}

TEST(ThreadPoolTest, TasksCanWriteDisjointSlots) {
  ThreadPool pool(3);
  std::vector<int> results(50, 0);
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&results, i] { results[i] = i * i; });
  }
  pool.Wait();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(results[i], i * i);
}

TEST(ThreadPoolTest, MultipleWaitRoundsWork) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (round + 1) * 20);
  }
}

TEST(ThreadPoolTest, SingleThreadPoolIsSequentialButComplete) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 30; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 30);
  EXPECT_EQ(pool.num_threads(), 1);
}

TEST(ThreadPoolTest, SubmitWithResultDeliversValues) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.SubmitWithResult([i] { return i * i; }));
  }
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

TEST(ThreadPoolTest, SubmitWithResultSupportsMoveOnlyResults) {
  ThreadPool pool(2);
  auto future = pool.SubmitWithResult(
      [] { return std::make_unique<int>(99); });
  EXPECT_EQ(*future.get(), 99);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(200);
  ParallelFor(pool, hits.size(),
              [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, ZeroIterationsReturnsImmediately) {
  ThreadPool pool(2);
  ParallelFor(pool, 0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelForTest, SafeAlongsideUnrelatedTasks) {
  ThreadPool pool(3);
  std::atomic<int> background{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&background] { background.fetch_add(1); });
  }
  std::atomic<int> covered{0};
  ParallelFor(pool, 30, [&](size_t) { covered.fetch_add(1); });
  EXPECT_EQ(covered.load(), 30);  // Did not wait on a wrong signal.
  pool.Wait();
  EXPECT_EQ(background.load(), 50);
}

/// Parks every worker of a pool inside one spinning task each, so a test
/// can stage ring contents deterministically (nothing runs or gets stolen
/// while parked) and then let chosen workers go. Construction returns once
/// all workers are inside. Call `ReleaseAll()` and `pool.Wait()` before
/// letting this object go out of scope.
class ParkedWorkers {
 public:
  explicit ParkedWorkers(ThreadPool& pool) : release_(pool.num_threads()) {
    const int n = pool.num_threads();
    for (int w = 0; w < n; ++w) {
      // Steals may shuffle which worker runs which park task; each task
      // asks the pool who is actually running it. n spinning tasks across
      // n workers always ends with exactly one per worker.
      pool.SubmitTo(w, [this, &pool] {
        const int self = pool.current_worker_index();
        started_.fetch_add(1);
        while (!release_[self].load()) std::this_thread::yield();
      });
    }
    while (started_.load() < n) std::this_thread::yield();
  }

  void Release(int worker) { release_[worker].store(true); }
  void ReleaseAll() {
    for (auto& flag : release_) flag.store(true);
  }

 private:
  std::vector<std::atomic<bool>> release_;
  std::atomic<int> started_{0};
};

TEST(ThreadPoolTest, SubmitToRunsTasksOfOneWorkerInOrder) {
  ThreadPool pool(3);
  ParkedWorkers parked(pool);
  // Staged while everyone is parked: 50 tasks on worker 0's ring. Only
  // worker 0 gets released, so it alone drains them — and must do so FIFO.
  std::vector<int> order;
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) {
    pool.SubmitTo(0, [&order, &done, i] {
      order.push_back(i);
      done.fetch_add(1);
    });
  }
  parked.Release(0);
  while (done.load() < 50) std::this_thread::yield();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
  parked.ReleaseAll();
  pool.Wait();
}

TEST(ThreadPoolTest, IdleWorkersStealWholeTasksFromABusyShard) {
  ThreadPool pool(4);
  ParkedWorkers parked(pool);
  // 64 tasks staged on worker 0's ring; worker 0 stays parked while the
  // other three get released, so completion is only possible by stealing
  // whole tasks off shard 0.
  const uint64_t stolen_before = pool.stolen_tasks();
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    pool.SubmitTo(0, [&ran] { ran.fetch_add(1); });
  }
  parked.Release(1);
  parked.Release(2);
  parked.Release(3);
  while (ran.load() < 64) std::this_thread::yield();
  EXPECT_EQ(ran.load(), 64);
  EXPECT_GE(pool.stolen_tasks() - stolen_before, 64u);
  parked.ReleaseAll();
  pool.Wait();
}

TEST(ThreadPoolTest, ConcurrentSubmitToAndStealRunsEverythingExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kPerWorker = 500;
  std::vector<std::atomic<int>> hits(4 * kPerWorker);
  // Hammer all four rings from four external submitter threads while the
  // workers pop and steal concurrently — every task must run exactly once.
  std::vector<std::thread> submitters;
  for (int w = 0; w < 4; ++w) {
    submitters.emplace_back([&pool, &hits, w] {
      for (int i = 0; i < kPerWorker; ++i) {
        const int slot = w * kPerWorker + i;
        pool.SubmitTo(w, [&hits, slot] { hits[slot].fetch_add(1); });
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  pool.Wait();
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "slot " << i;
  }
  EXPECT_EQ(pool.executed_tasks(), hits.size());
}

TEST(ThreadPoolTest, CurrentWorkerIndexIdentifiesHomeAndOffPoolThreads) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.current_worker_index(), -1);  // Not a pool thread.
  {
    // Two spinning probes across two workers necessarily end up one per
    // worker; each asks the pool who it is. Both indices must come back
    // valid and distinct — i.e. each in-range index exactly once.
    std::vector<std::atomic<int>> seen(2);
    for (auto& s : seen) s.store(0);
    std::atomic<int> started{0};
    std::atomic<bool> release{false};
    for (int w = 0; w < 2; ++w) {
      pool.SubmitTo(w, [&pool, &seen, &started, &release] {
        const int self = pool.current_worker_index();
        EXPECT_GE(self, 0);
        EXPECT_LT(self, 2);
        if (self >= 0 && self < 2) seen[self].fetch_add(1);
        started.fetch_add(1);
        while (!release.load()) std::this_thread::yield();
      });
    }
    while (started.load() < 2) std::this_thread::yield();
    EXPECT_EQ(seen[0].load(), 1);
    EXPECT_EQ(seen[1].load(), 1);
    release.store(true);
    pool.Wait();
  }
  // A second pool's workers are strangers to the first.
  ThreadPool other(1);
  auto cross = other.SubmitWithResult(
      [&pool] { return pool.current_worker_index(); });
  EXPECT_EQ(cross.get(), -1);
}

TEST(ThreadPoolTest, SpawnSecondsIsMeasuredOnce) {
  ThreadPool pool(2);
  const double spawn = pool.spawn_seconds();
  EXPECT_GE(spawn, 0.0);
  pool.Submit([] {});
  pool.Wait();
  EXPECT_EQ(pool.spawn_seconds(), spawn);  // Construction-time only.
}

TEST(ThreadPoolTest, ShutdownDrainsNonEmptyRingsOfParkedWorkers) {
  // Rings still holding tasks at destruction time must be drained — even
  // rings whose home worker spends the whole test parked on another task.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    std::atomic<bool> release{false};
    pool.SubmitTo(0, [&release, &ran] {
      while (!release.load()) std::this_thread::yield();
      ran.fetch_add(1);
    });
    for (int i = 0; i < 30; ++i) {
      pool.SubmitTo(0, [&ran] { ran.fetch_add(1); });
    }
    release.store(true);
    // No Wait(): the destructor must drain shard 0's ring (its owner or
    // thieves, either way) before joining.
  }
  EXPECT_EQ(ran.load(), 31);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 40; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No Wait(): the destructor must still run everything.
  }
  EXPECT_EQ(counter.load(), 40);
}

TEST(ThreadPoolTest, SubmitToWakesTheSleepingHomeWorkerDirectly) {
  // Per-worker condvars: when the home worker is asleep, SubmitTo must
  // wake *it* — the task then runs on its home shard via an uncontended
  // PopFront, with no steal. Repeat from a fully-parked pool each round so
  // every submission exercises the targeted-wake path, not a still-awake
  // worker's drain loop.
  ThreadPool pool(4);
  for (int round = 0; round < 25; ++round) {
    const int home = round % 4;
    while (pool.sleeping_workers() < 4) std::this_thread::yield();
    const uint64_t stolen_before = pool.stolen_tasks();
    std::atomic<int> ran_on{-1};
    pool.SubmitTo(home, [&pool, &ran_on] {
      ran_on.store(pool.current_worker_index());
    });
    pool.Wait();
    EXPECT_EQ(ran_on.load(), home) << "round " << round;
    EXPECT_EQ(pool.stolen_tasks(), stolen_before) << "round " << round;
  }
}

TEST(ThreadPoolTest, ParkedHomeStillGetsItsWorkRunByASleepingThief) {
  // The targeted wake must not strand work when the home worker is busy:
  // with workers 0-2 parked and only worker 3 asleep, a SubmitTo(0, ...)
  // has to fall through to "wake any sleeper" and get the task stolen by
  // worker 3 — never a silent hang waiting for worker 0.
  ThreadPool pool(4);
  ParkedWorkers parked(pool);
  parked.Release(3);
  // Worker 3 finishes its park task and goes to sleep; the others stay
  // parked (busy, not asleep).
  while (pool.sleeping_workers() < 1) std::this_thread::yield();
  std::atomic<int> ran_on{-1};
  std::atomic<bool> done{false};
  pool.SubmitTo(0, [&pool, &ran_on, &done] {
    ran_on.store(pool.current_worker_index());
    done.store(true);
  });
  while (!done.load()) std::this_thread::yield();
  EXPECT_EQ(ran_on.load(), 3);
  parked.ReleaseAll();
  pool.Wait();
}

TEST(ThreadPoolTest, ThrowingTaskIsContainedCountedAndPoolSurvives) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&ran, i] {
      if (i % 2 == 0) throw std::runtime_error("task bug");
      ran.fetch_add(1);
    });
  }
  // Wait() must return even though half the tasks threw (completion
  // accounting survives the catch), and the workers keep serving.
  pool.Wait();
  EXPECT_EQ(ran.load(), 4);
  EXPECT_EQ(pool.task_exceptions(), 4u);
  EXPECT_EQ(pool.executed_tasks(), 8u);
  pool.Submit([&ran] { ran.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(ran.load(), 5);
}

}  // namespace
}  // namespace kgacc
