#include "kgacc/util/thread_pool.h"

#include <atomic>
#include <future>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

namespace kgacc {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // Must not hang.
  SUCCEED();
}

TEST(ThreadPoolTest, TasksCanWriteDisjointSlots) {
  ThreadPool pool(3);
  std::vector<int> results(50, 0);
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&results, i] { results[i] = i * i; });
  }
  pool.Wait();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(results[i], i * i);
}

TEST(ThreadPoolTest, MultipleWaitRoundsWork) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (round + 1) * 20);
  }
}

TEST(ThreadPoolTest, SingleThreadPoolIsSequentialButComplete) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 30; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 30);
  EXPECT_EQ(pool.num_threads(), 1);
}

TEST(ThreadPoolTest, SubmitWithResultDeliversValues) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.SubmitWithResult([i] { return i * i; }));
  }
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

TEST(ThreadPoolTest, SubmitWithResultSupportsMoveOnlyResults) {
  ThreadPool pool(2);
  auto future = pool.SubmitWithResult(
      [] { return std::make_unique<int>(99); });
  EXPECT_EQ(*future.get(), 99);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(200);
  ParallelFor(pool, hits.size(),
              [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, ZeroIterationsReturnsImmediately) {
  ThreadPool pool(2);
  ParallelFor(pool, 0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelForTest, SafeAlongsideUnrelatedTasks) {
  ThreadPool pool(3);
  std::atomic<int> background{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&background] { background.fetch_add(1); });
  }
  std::atomic<int> covered{0};
  ParallelFor(pool, 30, [&](size_t) { covered.fetch_add(1); });
  EXPECT_EQ(covered.load(), 30);  // Did not wait on a wrong signal.
  pool.Wait();
  EXPECT_EQ(background.load(), 50);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 40; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No Wait(): the destructor must still run everything.
  }
  EXPECT_EQ(counter.load(), 40);
}

}  // namespace
}  // namespace kgacc
