#include "kgacc/util/arg_parser.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

ArgParser MakeParser() {
  ArgParser parser;
  parser.AddFlag("kg", "path").AddFlag("alpha", "level").AddFlag("json",
                                                                 "toggle");
  return parser;
}

Result<ParsedArgs> ParseAll(const std::vector<const char*>& argv) {
  return MakeParser().Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParserTest, EqualsSyntax) {
  const auto args = *ParseAll({"--kg=facts.tsv", "--alpha=0.01"});
  EXPECT_EQ(args.GetString("kg"), "facts.tsv");
  EXPECT_DOUBLE_EQ(*args.GetDouble("alpha", 0.05), 0.01);
}

TEST(ArgParserTest, SpaceSyntax) {
  const auto args = *ParseAll({"--kg", "facts.tsv"});
  EXPECT_EQ(args.GetString("kg"), "facts.tsv");
}

TEST(ArgParserTest, BooleanForms) {
  EXPECT_TRUE(*(*ParseAll({"--json"})).GetBool("json", false));
  EXPECT_TRUE(*(*ParseAll({"--json=true"})).GetBool("json", false));
  EXPECT_TRUE(*(*ParseAll({"--json=1"})).GetBool("json", false));
  EXPECT_FALSE(*(*ParseAll({"--json=false"})).GetBool("json", true));
  EXPECT_FALSE(*(*ParseAll({"--json=0"})).GetBool("json", true));
  EXPECT_FALSE((*ParseAll({"--json=maybe"})).GetBool("json", false).ok());
}

TEST(ArgParserTest, FallbacksWhenAbsent) {
  const auto args = *ParseAll({});
  EXPECT_EQ(args.GetString("kg", "default.tsv"), "default.tsv");
  EXPECT_DOUBLE_EQ(*args.GetDouble("alpha", 0.05), 0.05);
  EXPECT_EQ(*args.GetInt("alpha", 7), 7);
  EXPECT_FALSE(*args.GetBool("json", false));
  EXPECT_FALSE(args.Has("kg"));
}

TEST(ArgParserTest, UnknownFlagIsError) {
  const auto r = ParseAll({"--bogus=1"});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("bogus"), std::string::npos);
}

TEST(ArgParserTest, MalformedNumbersAreErrors) {
  const auto args = *ParseAll({"--alpha=abc"});
  EXPECT_FALSE(args.GetDouble("alpha", 0.05).ok());
  EXPECT_FALSE(args.GetInt("alpha", 1).ok());
}

TEST(ArgParserTest, PositionalArguments) {
  const auto args = *ParseAll({"--kg=x.tsv", "first", "second"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "first");
  EXPECT_EQ(args.positional()[1], "second");
}

TEST(ArgParserTest, DoubleDashEndsFlagParsing) {
  const auto args = *ParseAll({"--", "--kg=hidden"});
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "--kg=hidden");
  EXPECT_FALSE(args.Has("kg"));
}

TEST(ArgParserTest, HelpTextListsAllFlags) {
  const std::string help = MakeParser().HelpText();
  EXPECT_NE(help.find("--kg"), std::string::npos);
  EXPECT_NE(help.find("--alpha"), std::string::npos);
  EXPECT_NE(help.find("--json"), std::string::npos);
}

}  // namespace
}  // namespace kgacc
