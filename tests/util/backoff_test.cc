// Backoff semantics: the delay curve grows exponentially under a cap, the
// jitter stream is deterministic given its seed, and RetryWithBackoff
// retries transient errors only, within the attempt budget.

#include "kgacc/util/backoff.h"

#include <vector>

#include <gtest/gtest.h>

namespace kgacc {
namespace {

BackoffPolicy FastPolicy() {
  // Near-zero delays: these tests exercise logic, not wall clocks.
  BackoffPolicy policy;
  policy.max_attempts = 4;
  policy.initial_delay_ms = 0.001;
  policy.max_delay_ms = 0.01;
  return policy;
}

TEST(BackoffTest, DelaysGrowExponentiallyUnderTheCap) {
  BackoffPolicy policy;
  policy.initial_delay_ms = 1.0;
  policy.multiplier = 2.0;
  policy.max_delay_ms = 10.0;
  policy.jitter = 0.0;  // Nominal curve only.
  ExponentialBackoff backoff(policy);
  EXPECT_DOUBLE_EQ(backoff.NextDelayMs(), 1.0);
  EXPECT_DOUBLE_EQ(backoff.NextDelayMs(), 2.0);
  EXPECT_DOUBLE_EQ(backoff.NextDelayMs(), 4.0);
  EXPECT_DOUBLE_EQ(backoff.NextDelayMs(), 8.0);
  EXPECT_DOUBLE_EQ(backoff.NextDelayMs(), 10.0);  // Capped.
  EXPECT_DOUBLE_EQ(backoff.NextDelayMs(), 10.0);
  EXPECT_EQ(backoff.delays_issued(), 6);
}

TEST(BackoffTest, JitterStaysInBandAndIsSeedDeterministic) {
  BackoffPolicy policy;
  policy.initial_delay_ms = 1.0;
  policy.multiplier = 1.0;  // Constant nominal, so the band is fixed.
  policy.jitter = 0.5;
  policy.seed = 99;
  std::vector<double> first, second;
  ExponentialBackoff a(policy);
  for (int i = 0; i < 32; ++i) first.push_back(a.NextDelayMs());
  ExponentialBackoff b(policy);
  for (int i = 0; i < 32; ++i) second.push_back(b.NextDelayMs());
  EXPECT_EQ(first, second);
  for (const double delay : first) {
    EXPECT_GE(delay, 0.5);
    EXPECT_LE(delay, 1.5);
  }
  // Reset replays the same schedule.
  a.Reset();
  EXPECT_DOUBLE_EQ(a.NextDelayMs(), first[0]);
}

TEST(BackoffTest, RetrySucceedsAfterTransientFailures) {
  int calls = 0;
  uint64_t retries = 0;
  const Status status = RetryWithBackoff(
      FastPolicy(),
      [&] {
        ++calls;
        return calls < 3 ? Status::IoError("transient") : Status::OK();
      },
      &retries);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2u);
}

TEST(BackoffTest, RetryStopsAtTheAttemptBudget) {
  int calls = 0;
  uint64_t retries = 0;
  const Status status = RetryWithBackoff(
      FastPolicy(),
      [&] {
        ++calls;
        return Status::IoError("always transient");
      },
      &retries);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_EQ(calls, 4);    // max_attempts.
  EXPECT_EQ(retries, 3u); // max_attempts - 1.
}

TEST(BackoffTest, PermanentErrorsAreNeverRetried) {
  int calls = 0;
  uint64_t retries = 0;
  const Status status = RetryWithBackoff(
      FastPolicy(),
      [&] {
        ++calls;
        return Status::FailedPrecondition("caller bug");
      },
      &retries);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(retries, 0u);
}

TEST(BackoffTest, FirstSuccessReturnsImmediately) {
  int calls = 0;
  const Status status =
      RetryWithBackoff(FastPolicy(), [&] { ++calls; return Status::OK(); });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 1);
}

TEST(BackoffTest, TransientPredicateIsIoErrorOnly) {
  EXPECT_TRUE(IsTransientError(Status::IoError("disk hiccup")));
  EXPECT_FALSE(IsTransientError(Status::OK()));
  EXPECT_FALSE(IsTransientError(Status::FailedPrecondition("conflict")));
  EXPECT_FALSE(IsTransientError(Status::InvalidArgument("bad arg")));
  EXPECT_FALSE(IsTransientError(Status::Internal("bug")));
  EXPECT_FALSE(IsTransientError(Status::DeadlineExceeded("late")));
}

}  // namespace
}  // namespace kgacc
