#include "kgacc/util/flat_set.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "kgacc/util/random.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

TEST(FlatSet64Test, StartsEmpty) {
  FlatSet64 set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.size(), 0u);
  EXPECT_FALSE(set.contains(0));
  EXPECT_FALSE(set.contains(42));
}

TEST(FlatSet64Test, InsertReportsNovelty) {
  FlatSet64 set;
  EXPECT_TRUE(set.insert(7));
  EXPECT_FALSE(set.insert(7));
  EXPECT_TRUE(set.insert(8));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(7));
  EXPECT_TRUE(set.contains(8));
  EXPECT_FALSE(set.contains(9));
}

TEST(FlatSet64Test, ZeroKeyIsAFirstClassMember) {
  FlatSet64 set;
  EXPECT_FALSE(set.contains(0));
  EXPECT_TRUE(set.insert(0));
  EXPECT_FALSE(set.insert(0));
  EXPECT_TRUE(set.contains(0));
  EXPECT_EQ(set.size(), 1u);
  set.clear();
  EXPECT_FALSE(set.contains(0));
  EXPECT_TRUE(set.insert(0));
}

TEST(FlatSet64Test, GrowthPreservesMembership) {
  FlatSet64 set;
  for (uint64_t k = 1; k <= 10000; ++k) {
    EXPECT_TRUE(set.insert(k * 0x9e3779b97f4a7c15ULL));
  }
  EXPECT_EQ(set.size(), 10000u);
  for (uint64_t k = 1; k <= 10000; ++k) {
    EXPECT_TRUE(set.contains(k * 0x9e3779b97f4a7c15ULL)) << k;
  }
  // Load factor never exceeds 3/4.
  EXPECT_GE(set.capacity() * 3, set.size() * 4);
}

TEST(FlatSet64Test, ClearKeepsCapacityAndResetsMembers) {
  FlatSet64 set;
  for (uint64_t k = 0; k < 1000; ++k) set.insert(k);
  const size_t capacity = set.capacity();
  set.clear();
  EXPECT_EQ(set.size(), 0u);
  EXPECT_EQ(set.capacity(), capacity);
  for (uint64_t k = 0; k < 1000; ++k) {
    EXPECT_FALSE(set.contains(k));
    EXPECT_TRUE(set.insert(k));
  }
}

TEST(FlatSet64Test, ReserveAvoidsRehash) {
  FlatSet64 set(5000);
  const size_t capacity = set.capacity();
  for (uint64_t k = 0; k < 5000; ++k) {
    set.insert(Mix64(k));
    ASSERT_FALSE(set.migrating());  // No growth, hence no migration debt.
  }
  EXPECT_EQ(set.capacity(), capacity);
  EXPECT_EQ(set.size(), 5000u);
}

TEST(FlatSet64Test, GrowthMigratesIncrementally) {
  // Push the set through several doublings and interrogate it *while* the
  // retired table is still draining: membership, novelty reporting, and
  // size must be exact at every point, and each migration debt must be
  // fully paid before the next doubling starts.
  FlatSet64 set;
  bool observed_migration = false;
  for (uint64_t k = 1; k <= 100000; ++k) {
    const uint64_t key = Mix64(k);
    ASSERT_TRUE(set.insert(key));
    ASSERT_FALSE(set.insert(key)) << "fresh key reported twice at " << k;
    if (set.migrating()) {
      observed_migration = true;
      // Mid-migration probes must see keys in both tables.
      ASSERT_TRUE(set.contains(key));
      ASSERT_TRUE(set.contains(Mix64(1)));
      ASSERT_FALSE(set.contains(~key));
    }
    ASSERT_EQ(set.size(), k);
  }
  EXPECT_TRUE(observed_migration);
  for (uint64_t k = 1; k <= 100000; ++k) {
    ASSERT_TRUE(set.contains(Mix64(k))) << k;
  }
}

TEST(FlatSet64Test, MigrationDebtDrainsWellBeforeNextDoubling) {
  FlatSet64 set;
  size_t last_capacity = 0;
  size_t inserts_since_growth = 0;
  for (uint64_t k = 1; k <= 100000; ++k) {
    set.insert(Mix64(k));
    if (set.capacity() != last_capacity) {
      last_capacity = set.capacity();
      inserts_since_growth = 0;
    } else {
      ++inserts_since_growth;
    }
    if (inserts_since_growth > last_capacity / 8) {
      ASSERT_FALSE(set.migrating())
          << "migration outlived its budget at size " << k;
    }
  }
}

TEST(FlatSet64Test, DoublingZeroesTheNewTableInChunks) {
  // Once the table is large enough that its doubled successor exceeds one
  // zeroing chunk, the zeroing phase must span several inserts (no single
  // insert pays the full memset) while membership, novelty reporting, and
  // size stay exact throughout.
  FlatSet64 set;
  bool observed_zeroing = false;
  size_t longest_zeroing_run = 0;
  size_t current_run = 0;
  for (uint64_t k = 1; k <= 100000; ++k) {
    const uint64_t key = Mix64(k);
    ASSERT_TRUE(set.insert(key));
    ASSERT_FALSE(set.insert(key)) << "fresh key reported twice at " << k;
    if (set.zeroing()) {
      observed_zeroing = true;
      ++current_run;
      // Mid-zeroing the staged table holds no members; probes must be
      // served by the active (and possibly retired) tables alone.
      ASSERT_TRUE(set.contains(key));
      ASSERT_TRUE(set.contains(Mix64(1)));
      ASSERT_FALSE(set.contains(~key));
    } else {
      longest_zeroing_run = std::max(longest_zeroing_run, current_run);
      current_run = 0;
    }
    ASSERT_EQ(set.size(), k);
  }
  EXPECT_TRUE(observed_zeroing);
  // 100k keys grow the table to 128Ki+ buckets; zeroing its 256Ki-bucket
  // successor at 512 buckets per insert must have spanned hundreds of
  // inserts — the amortization this test exists to pin down.
  EXPECT_GE(longest_zeroing_run, 100u);
  for (uint64_t k = 1; k <= 100000; ++k) {
    ASSERT_TRUE(set.contains(Mix64(k))) << k;
  }
}

TEST(FlatSet64Test, ClearDiscardsInFlightZeroingAndKeepsCapacity) {
  FlatSet64 set;
  uint64_t k = 1;
  // Drive until a zeroing phase is in flight.
  while (!set.zeroing() && k < (1u << 21)) set.insert(Mix64(k++));
  ASSERT_TRUE(set.zeroing());
  const size_t capacity = set.capacity();
  set.clear();
  EXPECT_EQ(set.size(), 0u);
  EXPECT_EQ(set.capacity(), capacity);
  EXPECT_FALSE(set.zeroing());
  EXPECT_FALSE(set.migrating());
  for (uint64_t j = 1; j <= 1000; ++j) {
    EXPECT_FALSE(set.contains(Mix64(j)));
    EXPECT_TRUE(set.insert(Mix64(j)));
  }
}

TEST(FlatSet64Test, CopyMidZeroingIsIndependentAndExact) {
  FlatSet64 a;
  uint64_t k = 1;
  while (!a.zeroing() && k < (1u << 21)) a.insert(Mix64(k++));
  ASSERT_TRUE(a.zeroing());
  const size_t members = a.size();
  FlatSet64 b = a;
  EXPECT_EQ(b.size(), members);
  for (uint64_t j = 1; j < k; ++j) {
    ASSERT_TRUE(b.contains(Mix64(j))) << j;
  }
  b.insert(Mix64(k));
  EXPECT_EQ(a.size(), members);
  EXPECT_FALSE(a.contains(Mix64(k)));
  // The copy finishes its own growth independently.
  for (uint64_t j = k; j < k + 50000; ++j) b.insert(Mix64(j));
  EXPECT_EQ(b.size(), members + 50000);
}

TEST(FlatSet64Test, MatchesUnorderedSetOnRandomKeys) {
  // Random stream with deliberate duplicates (small key range) plus a few
  // adversarial patterns: zero, consecutive runs, and high-bit keys.
  Rng rng(1234);
  FlatSet64 flat;
  std::unordered_set<uint64_t> reference;
  for (int i = 0; i < 200000; ++i) {
    uint64_t key;
    switch (i % 4) {
      case 0:
        key = rng.UniformInt(50000);  // Dense duplicates.
        break;
      case 1:
        key = rng.Next();  // Full 64-bit range.
        break;
      case 2:
        key = 0xffffffff00000000ULL | rng.UniformInt(1024);  // High bits set.
        break;
      default:
        key = static_cast<uint64_t>(i / 4);  // Consecutive run.
    }
    EXPECT_EQ(flat.insert(key), reference.insert(key).second) << key;
  }
  EXPECT_EQ(flat.size(), reference.size());
  for (uint64_t key : reference) {
    EXPECT_TRUE(flat.contains(key));
  }
  Rng probe(99);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t key = probe.Next();
    EXPECT_EQ(flat.contains(key), reference.count(key) > 0);
  }
}

TEST(FlatSet64Test, MovedFromSetIsEmptyAndReusable) {
  FlatSet64 a;
  for (uint64_t k = 0; k < 1000; ++k) a.insert(Mix64(k));
  FlatSet64 b = std::move(a);
  EXPECT_EQ(b.size(), 1000u);
  EXPECT_TRUE(b.contains(Mix64(7)));
  // The moved-from set must be a valid empty set, not a null-table husk.
  EXPECT_EQ(a.size(), 0u);
  EXPECT_EQ(a.capacity(), 0u);
  EXPECT_FALSE(a.contains(Mix64(7)));
  a.clear();  // Must not dereference the surrendered storage.
  for (uint64_t k = 0; k < 100; ++k) EXPECT_TRUE(a.insert(Mix64(k)));
  EXPECT_EQ(a.size(), 100u);
  a = std::move(b);
  EXPECT_EQ(a.size(), 1000u);
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.insert(42));
}

TEST(FlatSet64Test, CopyIsIndependent) {
  FlatSet64 a;
  for (uint64_t k = 0; k < 100; ++k) a.insert(k);
  FlatSet64 b = a;
  b.insert(1000);
  EXPECT_EQ(a.size(), 100u);
  EXPECT_EQ(b.size(), 101u);
  EXPECT_FALSE(a.contains(1000));
  EXPECT_TRUE(b.contains(1000));
}

}  // namespace
}  // namespace kgacc
