#include "kgacc/estimate/estimators.h"

#include <cmath>

#include "kgacc/eval/annotator.h"
#include "kgacc/kg/synthetic.h"
#include "kgacc/sampling/cluster.h"
#include "kgacc/sampling/srs.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

AnnotatedSample MakeSrsSample(uint32_t n, uint32_t tau) {
  AnnotatedSample sample;
  for (uint32_t i = 0; i < n; ++i) {
    sample.Add(AnnotatedUnit{.cluster = i, .cluster_population = 1,
                             .drawn = 1, .correct = (i < tau) ? 1u : 0u});
  }
  return sample;
}

TEST(EstimateSrsTest, PointEstimateAndVariance) {
  const auto est = *EstimateSrs(MakeSrsSample(100, 80));
  EXPECT_DOUBLE_EQ(est.mu, 0.8);
  EXPECT_DOUBLE_EQ(est.variance, 0.8 * 0.2 / 100.0);
  EXPECT_EQ(est.n, 100u);
  EXPECT_EQ(est.tau, 80u);
}

TEST(EstimateSrsTest, DegenerateAllCorrectHasZeroVariance) {
  const auto est = *EstimateSrs(MakeSrsSample(30, 30));
  EXPECT_DOUBLE_EQ(est.mu, 1.0);
  EXPECT_DOUBLE_EQ(est.variance, 0.0);
}

TEST(EstimateSrsTest, EmptySampleIsError) {
  AnnotatedSample empty;
  EXPECT_FALSE(EstimateSrs(empty).ok());
}

TEST(EstimateSrsTest, FinitePopulationCorrectionShrinksVariance) {
  const auto sample = MakeSrsSample(100, 80);
  const auto plain = *EstimateSrs(sample);
  const auto corrected = *EstimateSrs(sample, 400);
  // fpc = 1 - 100/400 = 0.75.
  EXPECT_NEAR(corrected.variance, 0.75 * plain.variance, 1e-15);
  EXPECT_EQ(corrected.population, 400u);
  EXPECT_EQ(plain.population, 0u);
}

TEST(EstimateSrsTest, FullCensusHasZeroVariance) {
  const auto sample = MakeSrsSample(100, 80);
  const auto census = *EstimateSrs(sample, 100);
  EXPECT_DOUBLE_EQ(census.variance, 0.0);
}

TEST(EstimateSrsTest, RejectsSampleLargerThanPopulation) {
  EXPECT_FALSE(EstimateSrs(MakeSrsSample(100, 80), 50).ok());
}

TEST(EstimateClusterTest, MeanOfClusterAccuracies) {
  AnnotatedSample sample;
  sample.Add(AnnotatedUnit{.cluster = 0, .cluster_population = 8, .drawn = 4,
                           .correct = 4});  // mu_1 = 1.0
  sample.Add(AnnotatedUnit{.cluster = 1, .cluster_population = 6, .drawn = 4,
                           .correct = 2});  // mu_2 = 0.5
  sample.Add(AnnotatedUnit{.cluster = 2, .cluster_population = 4, .drawn = 4,
                           .correct = 0});  // mu_3 = 0.0
  const auto est = *EstimateCluster(sample);
  EXPECT_DOUBLE_EQ(est.mu, 0.5);
  // V = sum (mu_i - 0.5)^2 / (3 * 2) = (0.25 + 0 + 0.25) / 6.
  EXPECT_DOUBLE_EQ(est.variance, 0.5 / 6.0);
  EXPECT_EQ(est.num_units, 3u);
}

TEST(EstimateClusterTest, SingleUnitUsesConservativeVariance) {
  AnnotatedSample sample;
  sample.Add(AnnotatedUnit{.cluster = 0, .cluster_population = 5, .drawn = 3,
                           .correct = 2});
  const auto est = *EstimateCluster(sample);
  EXPECT_DOUBLE_EQ(est.variance, 0.25 / 3.0);
}

TEST(EstimateClusterTest, IdenticalClustersGiveZeroVariance) {
  AnnotatedSample sample;
  for (int i = 0; i < 5; ++i) {
    sample.Add(AnnotatedUnit{.cluster = static_cast<uint64_t>(i),
                             .cluster_population = 3, .drawn = 3,
                             .correct = 3});
  }
  const auto est = *EstimateCluster(sample);
  EXPECT_DOUBLE_EQ(est.mu, 1.0);
  EXPECT_DOUBLE_EQ(est.variance, 0.0);
}

TEST(EstimateRcsTest, RatioEstimate) {
  AnnotatedSample sample;
  sample.Add(AnnotatedUnit{.cluster = 0, .cluster_population = 4, .drawn = 4,
                           .correct = 4});
  sample.Add(AnnotatedUnit{.cluster = 1, .cluster_population = 2, .drawn = 2,
                           .correct = 0});
  const auto est = *EstimateRcs(sample);
  EXPECT_DOUBLE_EQ(est.mu, 4.0 / 6.0);
}

TEST(EstimateDispatchTest, RoutesOnKind) {
  const auto sample = MakeSrsSample(10, 5);
  EXPECT_DOUBLE_EQ((*Estimate(EstimatorKind::kSrs, sample)).mu, 0.5);
  EXPECT_TRUE(Estimate(EstimatorKind::kCluster, sample).ok());
}

// --- Unbiasedness properties against live samplers -----------------------

SyntheticKg MakeKgPop(double accuracy, LabelModel model, double rho) {
  SyntheticKgConfig cfg;
  cfg.num_clusters = 800;
  cfg.mean_cluster_size = 3.0;
  cfg.accuracy = accuracy;
  cfg.label_model = model;
  cfg.intra_cluster_rho = rho;
  cfg.seed = 1234;
  return *SyntheticKg::Create(cfg);
}

double RunMeanOfEstimates(Sampler& sampler, int reps, int batches) {
  OracleAnnotator annotator;
  double sum = 0.0;
  SampleBatch batch_;
  for (int r = 0; r < reps; ++r) {
    Rng rng(1000 + r);
    sampler.Reset();
    AnnotatedSample sample;
    for (int b = 0; b < batches; ++b) {
      KGACC_CHECK(sampler.NextBatch(&rng, &batch_).ok());
      for (size_t u = 0; u < batch_.size(); ++u) {
        const SampledUnit& unit = batch_.unit(u);
        AnnotatedUnit annotated;
        annotated.cluster = unit.cluster;
        annotated.cluster_population = unit.cluster_population;
        annotated.drawn = unit.offset_count;
        for (uint64_t o : batch_.offsets(u)) {
          annotated.correct +=
              annotator.Annotate(sampler.kg(), TripleRef{unit.cluster, o},
                                 &rng)
                  ? 1
                  : 0;
        }
        sample.Add(annotated);
      }
    }
    sum += (*Estimate(sampler.estimator(), sample)).mu;
  }
  return sum / reps;
}

TEST(UnbiasednessTest, SrsEstimatorIsUnbiased) {
  const auto kg = MakeKgPop(0.8, LabelModel::kIid, 0.0);
  SrsSampler sampler(kg, SrsConfig{.batch_size = 20});
  const double mean = RunMeanOfEstimates(sampler, 400, 3);
  // SE of the mean of 400 estimates of 60 draws each ~ 0.0026.
  EXPECT_NEAR(mean, kg.TrueAccuracy(), 0.012);
}

TEST(UnbiasednessTest, TwcsEstimatorIsUnbiasedUnderIidLabels) {
  const auto kg = MakeKgPop(0.7, LabelModel::kIid, 0.0);
  TwcsSampler sampler(kg, TwcsConfig{.batch_clusters = 10,
                                     .second_stage_size = 3});
  const double mean = RunMeanOfEstimates(sampler, 400, 3);
  EXPECT_NEAR(mean, kg.TrueAccuracy(), 0.015);
}

TEST(UnbiasednessTest, TwcsEstimatorIsUnbiasedUnderCorrelatedLabels) {
  const auto kg = MakeKgPop(0.85, LabelModel::kBetaMixture, 0.3);
  TwcsSampler sampler(kg, TwcsConfig{.batch_clusters = 10,
                                     .second_stage_size = 3});
  const double mean = RunMeanOfEstimates(sampler, 400, 3);
  EXPECT_NEAR(mean, kg.TrueAccuracy(), 0.015);
}

TEST(UnbiasednessTest, WcsEstimatorIsUnbiased) {
  const auto kg = MakeKgPop(0.6, LabelModel::kIid, 0.0);
  WcsSampler sampler(kg, ClusterConfig{.batch_clusters = 10});
  const double mean = RunMeanOfEstimates(sampler, 400, 3);
  EXPECT_NEAR(mean, kg.TrueAccuracy(), 0.015);
}

}  // namespace
}  // namespace kgacc
