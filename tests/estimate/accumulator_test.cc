#include "kgacc/estimate/accumulator.h"

#include <cmath>
#include <vector>

#include "kgacc/util/random.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

/// Mixed absolute/relative agreement bound for the streaming-vs-batch
/// comparisons whose summation order differs (cluster / RCS variances).
void ExpectAgrees(double streaming, double batch) {
  EXPECT_NEAR(streaming, batch, 1e-12 * std::max(1.0, std::abs(batch)));
}

AnnotatedUnit RandomUnit(Rng* rng, uint32_t max_drawn, uint32_t num_strata) {
  AnnotatedUnit unit;
  unit.cluster = rng->UniformInt(1 << 20);
  unit.drawn = static_cast<uint32_t>(rng->UniformInt(max_drawn)) + 1;
  // Mix extreme and interior per-unit accuracies.
  const double p = rng->Uniform() < 0.2 ? (rng->Uniform() < 0.5 ? 0.0 : 1.0)
                                        : rng->Uniform();
  for (uint32_t d = 0; d < unit.drawn; ++d) {
    unit.correct += rng->Bernoulli(p) ? 1 : 0;
  }
  unit.cluster_population = unit.drawn + rng->UniformInt(10);
  unit.stratum = static_cast<uint32_t>(rng->UniformInt(num_strata));
  return unit;
}

TEST(EstimatorAccumulatorTest, SrsMatchesBatchBitForBit) {
  Rng rng(101);
  AnnotatedSample sample;
  EstimatorAccumulator acc(EstimatorKind::kSrs);
  for (int i = 0; i < 5000; ++i) {
    AnnotatedUnit unit = RandomUnit(&rng, 1, 1);  // One triple per unit.
    sample.Add(unit);
    acc.Add(unit);
    if (i % 7 != 0) continue;  // Compare on a sweep of prefixes.
    const auto batch = *EstimateSrs(sample);
    const auto streaming = *acc.Estimate();
    EXPECT_EQ(streaming.mu, batch.mu);
    EXPECT_EQ(streaming.variance, batch.variance);
    EXPECT_EQ(streaming.n, batch.n);
    EXPECT_EQ(streaming.tau, batch.tau);
    EXPECT_EQ(streaming.num_units, batch.num_units);
  }
}

TEST(EstimatorAccumulatorTest, SrsFinitePopulationCorrectionMatches) {
  Rng rng(102);
  AnnotatedSample sample;
  EstimatorAccumulator acc(EstimatorKind::kSrs);
  const uint64_t population = 4000;
  for (int i = 0; i < 3000; ++i) {
    AnnotatedUnit unit = RandomUnit(&rng, 1, 1);
    sample.Add(unit);
    acc.Add(unit);
  }
  const auto batch = *EstimateSrs(sample, population);
  const auto streaming = *acc.Estimate(nullptr, population);
  EXPECT_EQ(streaming.mu, batch.mu);
  EXPECT_EQ(streaming.variance, batch.variance);
  EXPECT_EQ(streaming.population, batch.population);

  // Sample larger than the declared population is rejected identically.
  EXPECT_EQ(acc.Estimate(nullptr, 10).status().code(),
            EstimateSrs(sample, 10).status().code());
  EXPECT_EQ(acc.Estimate(nullptr, 10).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EstimatorAccumulatorTest, ClusterMatchesBatchOnRandomStreams) {
  Rng rng(103);
  AnnotatedSample sample;
  EstimatorAccumulator acc(EstimatorKind::kCluster);
  for (int i = 0; i < 4000; ++i) {
    AnnotatedUnit unit = RandomUnit(&rng, 12, 1);
    sample.Add(unit);
    acc.Add(unit);
    if (i % 11 != 0) continue;
    const auto batch = *EstimateCluster(sample);
    const auto streaming = *acc.Estimate();
    // The running mean adds the same terms in the same order: bit-exact.
    EXPECT_EQ(streaming.mu, batch.mu);
    ExpectAgrees(streaming.variance, batch.variance);
    EXPECT_EQ(streaming.num_units, batch.num_units);
  }
}

TEST(EstimatorAccumulatorTest, ClusterSingleUnitUsesWorstCaseVariance) {
  AnnotatedUnit unit;
  unit.drawn = 4;
  unit.correct = 3;
  AnnotatedSample sample;
  sample.Add(unit);
  EstimatorAccumulator acc(EstimatorKind::kCluster);
  acc.Add(unit);
  const auto batch = *EstimateCluster(sample);
  const auto streaming = *acc.Estimate();
  EXPECT_EQ(streaming.mu, batch.mu);
  EXPECT_EQ(streaming.variance, batch.variance);
  EXPECT_EQ(streaming.variance, 0.25 / 4.0);
}

TEST(EstimatorAccumulatorTest, RcsMatchesBatchOnRandomStreams) {
  Rng rng(104);
  AnnotatedSample sample;
  EstimatorAccumulator acc(EstimatorKind::kRcs);
  for (int i = 0; i < 4000; ++i) {
    AnnotatedUnit unit = RandomUnit(&rng, 15, 1);
    sample.Add(unit);
    acc.Add(unit);
    if (i % 11 != 0) continue;
    const auto batch = *EstimateRcs(sample);
    const auto streaming = *acc.Estimate();
    // Integer power sums reproduce the ratio exactly.
    EXPECT_EQ(streaming.mu, batch.mu);
    ExpectAgrees(streaming.variance, batch.variance);
  }
}

TEST(EstimatorAccumulatorTest, RcsDegenerateResidualsClampToZero) {
  // Every cluster fully correct: tau_i == M_i, so the linearized residuals
  // vanish and the power-sum expansion must not go negative.
  EstimatorAccumulator acc(EstimatorKind::kRcs);
  for (uint32_t m : {3u, 5u, 2u, 7u}) {
    AnnotatedUnit unit;
    unit.drawn = m;
    unit.correct = m;
    acc.Add(unit);
  }
  const auto streaming = *acc.Estimate();
  EXPECT_EQ(streaming.mu, 1.0);
  EXPECT_GE(streaming.variance, 0.0);
  EXPECT_LT(streaming.variance, 1e-12);
}

TEST(EstimatorAccumulatorTest, StratifiedMatchesBatchBitForBit) {
  Rng rng(105);
  const std::vector<double> weights = {0.5, 0.3, 0.15, 0.05};
  AnnotatedSample sample;
  EstimatorAccumulator acc(EstimatorKind::kStratified);
  for (int i = 0; i < 4000; ++i) {
    AnnotatedUnit unit = RandomUnit(&rng, 6, weights.size());
    // Leave stratum 3 unobserved early to exercise the imputation branch.
    if (i < 500 && unit.stratum == 3) unit.stratum = 0;
    sample.Add(unit);
    acc.Add(unit);
    if (i % 13 != 0) continue;
    const auto batch = *EstimateStratified(sample, weights);
    const auto streaming = *acc.Estimate(&weights);
    EXPECT_EQ(streaming.mu, batch.mu);
    EXPECT_EQ(streaming.variance, batch.variance);
    EXPECT_EQ(streaming.num_units, batch.num_units);
  }
}

TEST(EstimatorAccumulatorTest, StratifiedErrorsMatchBatchSemantics) {
  EstimatorAccumulator acc(EstimatorKind::kStratified);
  AnnotatedUnit unit;
  unit.drawn = 2;
  unit.correct = 1;
  unit.stratum = 5;
  acc.Add(unit);

  EXPECT_EQ(acc.Estimate(nullptr).status().code(),
            StatusCode::kInvalidArgument);
  const std::vector<double> empty;
  EXPECT_EQ(acc.Estimate(&empty).status().code(),
            StatusCode::kInvalidArgument);
  const std::vector<double> narrow = {0.5, 0.5};  // Stratum 5 out of range.
  EXPECT_EQ(acc.Estimate(&narrow).status().code(),
            StatusCode::kInvalidArgument);
  const std::vector<double> wide(6, 1.0 / 6.0);
  EXPECT_TRUE(acc.Estimate(&wide).ok());
}

TEST(EstimatorAccumulatorTest, EmptyAccumulatorFailsLikeBatch) {
  for (const EstimatorKind kind :
       {EstimatorKind::kSrs, EstimatorKind::kCluster, EstimatorKind::kRcs,
        EstimatorKind::kStratified}) {
    EstimatorAccumulator acc(kind);
    const auto result = acc.Estimate();
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  }
}

TEST(EstimatorAccumulatorTest, ResetRestoresFreshState) {
  Rng rng(106);
  EstimatorAccumulator acc(EstimatorKind::kCluster);
  for (int i = 0; i < 50; ++i) acc.Add(RandomUnit(&rng, 5, 1));
  acc.Reset();
  EXPECT_EQ(acc.num_triples(), 0u);
  EXPECT_EQ(acc.num_units(), 0u);
  EXPECT_FALSE(acc.Estimate().ok());

  // A post-reset stream estimates as if the accumulator were new.
  AnnotatedSample sample;
  for (int i = 0; i < 100; ++i) {
    const AnnotatedUnit unit = RandomUnit(&rng, 5, 1);
    sample.Add(unit);
    acc.Add(unit);
  }
  const auto batch = *EstimateCluster(sample);
  const auto streaming = *acc.Estimate();
  EXPECT_EQ(streaming.mu, batch.mu);
  ExpectAgrees(streaming.variance, batch.variance);
}

TEST(EstimatorAccumulatorTest, AddBatchEqualsElementwiseAdds) {
  Rng rng(107);
  std::vector<AnnotatedUnit> units;
  for (int i = 0; i < 200; ++i) units.push_back(RandomUnit(&rng, 8, 1));
  EstimatorAccumulator one(EstimatorKind::kRcs);
  EstimatorAccumulator many(EstimatorKind::kRcs);
  for (const AnnotatedUnit& unit : units) one.Add(unit);
  many.AddBatch(units);
  const auto a = *one.Estimate();
  const auto b = *many.Estimate();
  EXPECT_EQ(a.mu, b.mu);
  EXPECT_EQ(a.variance, b.variance);
}

TEST(EstimateDispatchTest, RcsKindRoutesToRatioEstimator) {
  AnnotatedSample sample;
  AnnotatedUnit a;
  a.drawn = 4;
  a.correct = 4;
  AnnotatedUnit b;
  b.drawn = 2;
  b.correct = 0;
  sample.Add(a);
  sample.Add(b);
  const auto via_kind = *Estimate(EstimatorKind::kRcs, sample);
  const auto direct = *EstimateRcs(sample);
  EXPECT_EQ(via_kind.mu, direct.mu);
  EXPECT_EQ(via_kind.variance, direct.variance);
  // Combined ratio 4/6, not the mean of per-cluster accuracies 1/2.
  EXPECT_DOUBLE_EQ(via_kind.mu, 4.0 / 6.0);
}

}  // namespace
}  // namespace kgacc
