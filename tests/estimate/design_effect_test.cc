#include "kgacc/estimate/design_effect.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

AccuracyEstimate MakeEstimate(double mu, double variance, uint64_t n,
                              uint64_t units) {
  AccuracyEstimate est;
  est.mu = mu;
  est.variance = variance;
  est.n = n;
  est.tau = static_cast<uint64_t>(mu * n);
  est.num_units = units;
  return est;
}

TEST(DesignEffectTest, IdentityWhenVarianceMatchesSrs) {
  // V_design == mu(1-mu)/n  =>  deff = 1, effective sample unchanged.
  const auto est = MakeEstimate(0.8, 0.8 * 0.2 / 100.0, 100, 10);
  const auto eff = ComputeEffectiveSample(est);
  EXPECT_DOUBLE_EQ(eff.deff, 1.0);
  EXPECT_DOUBLE_EQ(eff.n_eff, 100.0);
  EXPECT_DOUBLE_EQ(eff.tau_eff, 80.0);
}

TEST(DesignEffectTest, ClusteringInflationShrinksEffectiveSample) {
  // Variance twice the SRS reference: deff = 2, n_eff = n/2.
  const auto est = MakeEstimate(0.8, 2.0 * 0.8 * 0.2 / 100.0, 100, 10);
  const auto eff = ComputeEffectiveSample(est);
  EXPECT_DOUBLE_EQ(eff.deff, 2.0);
  EXPECT_DOUBLE_EQ(eff.n_eff, 50.0);
  EXPECT_DOUBLE_EQ(eff.tau_eff, 40.0);
}

TEST(DesignEffectTest, NegativeClusteringGrowsEffectiveSample) {
  // Balanced clusters (FACTBENCH regime): deff < 1 grows n_eff.
  const auto est = MakeEstimate(0.5, 0.5 * 0.5 / 100.0 * 0.5, 100, 10);
  const auto eff = ComputeEffectiveSample(est);
  EXPECT_DOUBLE_EQ(eff.deff, 0.5);
  EXPECT_DOUBLE_EQ(eff.n_eff, 200.0);
}

TEST(DesignEffectTest, ClampsAtConfiguredBounds) {
  DesignEffectOptions opts;
  opts.min_deff = 0.25;
  opts.max_deff = 20.0;
  const auto tiny = MakeEstimate(0.5, 1e-9, 100, 10);
  EXPECT_DOUBLE_EQ(ComputeEffectiveSample(tiny, opts).deff, 0.25);
  const auto huge = MakeEstimate(0.5, 1.0, 100, 10);
  EXPECT_DOUBLE_EQ(ComputeEffectiveSample(huge, opts).deff, 20.0);
}

TEST(DesignEffectTest, DegenerateEstimateFallsBackToUnity) {
  // mu = 1 makes the SRS reference variance zero.
  const auto all_correct = MakeEstimate(1.0, 0.0, 50, 10);
  const auto eff = ComputeEffectiveSample(all_correct);
  EXPECT_DOUBLE_EQ(eff.deff, 1.0);
  EXPECT_DOUBLE_EQ(eff.n_eff, 50.0);
  EXPECT_DOUBLE_EQ(eff.tau_eff, 50.0);
}

TEST(DesignEffectTest, SingleUnitFallsBackToUnity) {
  const auto est = MakeEstimate(0.5, 0.01, 3, 1);
  EXPECT_DOUBLE_EQ(ComputeEffectiveSample(est).deff, 1.0);
}

TEST(DesignEffectTest, TauEffConsistentWithMu) {
  const auto est = MakeEstimate(0.73, 1.5 * 0.73 * 0.27 / 60.0, 60, 20);
  const auto eff = ComputeEffectiveSample(est);
  EXPECT_NEAR(eff.tau_eff / eff.n_eff, 0.73, 1e-12);
}

}  // namespace
}  // namespace kgacc
