// The integration acceptance test for durable audits: a *real* process
// running an audit is killed with SIGKILL mid-stream — no destructors, no
// flush beyond the store's own per-frame discipline — and a second process
// (the test parent, which never touched the store before) resumes it and
// must produce the byte-identical report of an uninterrupted run.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <string>

#include "kgacc/eval/report.h"
#include "kgacc/kg/synthetic.h"
#include "kgacc/sampling/cluster.h"
#include "kgacc/store/checkpoint.h"
#include "kgacc/util/codec.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

constexpr uint64_t kSeed = 77;

SyntheticKg TestKg() {
  SyntheticKgConfig cfg;
  cfg.num_clusters = 500;
  cfg.mean_cluster_size = 3.5;
  cfg.accuracy = 0.84;
  cfg.seed = 19;
  return *SyntheticKg::Create(cfg);
}

EvaluationConfig TestConfig() {
  EvaluationConfig config;  // aHPD defaults.
  config.record_trace = true;
  return config;
}

/// Child body: run the durable audit and SIGKILL ourselves after
/// `crash_after` steps, *between* a step and its checkpoint — the worst
/// crash point, where the tail step's labels are on file but its snapshot
/// is not. Plain exits only: the child must never unwind into gtest.
[[noreturn]] void RunChildAndCrash(const std::string& store_path,
                                   int crash_after) {
  const auto kg = TestKg();
  auto store = AnnotationStore::Open(store_path);
  if (!store.ok()) _exit(10);
  OracleAnnotator oracle;
  StoredAnnotator annotator(&oracle, store->get(), kSeed);
  TwcsSampler sampler(kg, TwcsConfig{});
  EvaluationSession session(sampler, annotator, TestConfig(), kSeed);
  CheckpointManager manager(store->get(), kSeed, CheckpointOptions{});
  int steps = 0;
  while (!session.done()) {
    if (!session.Step().ok()) _exit(11);
    if (++steps >= crash_after) std::raise(SIGKILL);
    if (!manager.OnStep(session).ok()) _exit(12);
  }
  _exit(13);  // Finished before the crash point: test misconfigured.
}

TEST(CrashRecoveryTest, SigkilledAuditResumesToByteIdenticalReport) {
  const auto kg = TestKg();
  const EvaluationConfig config = TestConfig();
  const std::string path = testing::TempDir() + "/kgacc_crash_test_" +
                           std::to_string(::getpid());
  std::remove(path.c_str());

  // Uninterrupted reference, no store.
  EvaluationResult reference;
  {
    OracleAnnotator oracle;
    TwcsSampler sampler(kg, TwcsConfig{});
    EvaluationSession session(sampler, oracle, config, kSeed);
    const auto result = session.Run();
    ASSERT_TRUE(result.ok());
    reference = *result;
    ASSERT_GE(reference.iterations, 4);
  }

  // Kill a real audit process mid-stream.
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    RunChildAndCrash(path, reference.iterations / 2);
  }
  int wait_status = 0;
  ASSERT_EQ(::waitpid(child, &wait_status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wait_status))
      << "child exited with code "
      << (WIFEXITED(wait_status) ? WEXITSTATUS(wait_status) : -1)
      << " instead of dying by signal";
  ASSERT_EQ(WTERMSIG(wait_status), SIGKILL);

  // Resume in this (fresh) process and finish.
  auto store = AnnotationStore::Open(path);
  ASSERT_TRUE(store.ok());
  EXPECT_FALSE((*store)->stats().recovery.truncated_tail)
      << "per-frame flushing should leave no torn tail on SIGKILL";
  OracleAnnotator oracle;
  StoredAnnotator annotator(&oracle, store->get(), kSeed);
  TwcsSampler sampler(kg, TwcsConfig{});
  EvaluationSession session(sampler, annotator, config, kSeed);
  CheckpointManager manager(store->get(), kSeed, CheckpointOptions{});
  ASSERT_TRUE(manager.CanResume());
  const auto result = RunDurableAudit(session, manager, &annotator);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(annotator.status().ok());

  EXPECT_EQ(result->mu, reference.mu);
  EXPECT_EQ(result->interval.lower, reference.interval.lower);
  EXPECT_EQ(result->interval.upper, reference.interval.upper);
  EXPECT_EQ(result->annotated_triples, reference.annotated_triples);
  EXPECT_EQ(result->distinct_triples, reference.distinct_triples);
  EXPECT_EQ(result->distinct_entities, reference.distinct_entities);
  EXPECT_EQ(result->iterations, reference.iterations);
  EXPECT_EQ(result->stop_reason, reference.stop_reason);
  ReportContext context;
  context.dataset_name = "crash-test";
  context.design_name = "TWCS";
  EXPECT_EQ(RenderJsonReport(context, config, *result),
            RenderJsonReport(context, config, reference));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace kgacc
