// Checkpoint/resume exactness, per design: an audit checkpointed after
// every step, abandoned mid-stream, and resumed from the store in a fresh
// set of objects (new store handle, new sampler, new annotator, new
// session — everything a fresh process would rebuild) must finish on a
// report byte-identical to the uninterrupted run. Covers SRS (with and
// without replacement), TWCS, WCS, RCS, SSRS, and systematic sampling,
// each under the full aHPD loop.

#include <unistd.h>

#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include "kgacc/eval/report.h"
#include "kgacc/kg/synthetic.h"
#include "kgacc/sampling/cluster.h"
#include "kgacc/sampling/srs.h"
#include "kgacc/sampling/stratified.h"
#include "kgacc/sampling/systematic.h"
#include "kgacc/store/checkpoint.h"
#include "kgacc/util/codec.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

std::string TempPath(const char* name) {
  return testing::TempDir() + "/kgacc_ckpt_test_" + name + "_" +
         std::to_string(::getpid());
}

SyntheticKg TestKg() {
  SyntheticKgConfig cfg;
  cfg.num_clusters = 500;
  cfg.mean_cluster_size = 3.5;
  cfg.accuracy = 0.82;
  cfg.seed = 31;
  return *SyntheticKg::Create(cfg);
}

EvaluationConfig TestConfig() {
  EvaluationConfig config;  // aHPD, alpha = eps = 0.05.
  config.record_trace = true;
  return config;
}

using SamplerFactory = std::function<std::unique_ptr<Sampler>(const KgView&)>;

/// Field-by-field bitwise comparison plus rendered-report equality — the
/// "byte-identical report" acceptance criterion, literally.
void ExpectIdenticalResults(const EvaluationResult& a,
                            const EvaluationResult& b,
                            const EvaluationConfig& config,
                            const char* design) {
  EXPECT_EQ(a.mu, b.mu) << design;
  EXPECT_EQ(a.interval.lower, b.interval.lower) << design;
  EXPECT_EQ(a.interval.upper, b.interval.upper) << design;
  EXPECT_EQ(a.annotated_triples, b.annotated_triples) << design;
  EXPECT_EQ(a.distinct_triples, b.distinct_triples) << design;
  EXPECT_EQ(a.distinct_entities, b.distinct_entities) << design;
  EXPECT_EQ(a.cost_seconds, b.cost_seconds) << design;
  EXPECT_EQ(a.iterations, b.iterations) << design;
  EXPECT_EQ(a.winning_prior, b.winning_prior) << design;
  EXPECT_EQ(a.deff, b.deff) << design;
  EXPECT_EQ(a.converged, b.converged) << design;
  EXPECT_EQ(a.stop_reason, b.stop_reason) << design;
  ASSERT_EQ(a.trace.size(), b.trace.size()) << design;
  for (size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].n, b.trace[i].n) << design;
    EXPECT_EQ(a.trace[i].moe, b.trace[i].moe) << design;
    EXPECT_EQ(a.trace[i].mu, b.trace[i].mu) << design;
  }
  ReportContext context;
  context.dataset_name = "ckpt-test";
  context.design_name = design;
  EXPECT_EQ(RenderJsonReport(context, config, a),
            RenderJsonReport(context, config, b))
      << design;
  EXPECT_EQ(RenderTextReport(context, config, a),
            RenderTextReport(context, config, b))
      << design;
}

void CheckDesignResumesByteIdentical(const char* design,
                                     const SamplerFactory& make_sampler,
                                     uint64_t seed) {
  const auto kg = TestKg();
  const EvaluationConfig config = TestConfig();
  const std::string path = TempPath(design);
  std::remove(path.c_str());

  // Reference: the uninterrupted run, no store involved at all.
  EvaluationResult reference;
  {
    OracleAnnotator oracle;
    auto sampler = make_sampler(kg);
    EvaluationSession session(*sampler, oracle, config, seed);
    const auto result = session.Run();
    ASSERT_TRUE(result.ok()) << design;
    reference = *result;
    ASSERT_GE(reference.iterations, 2)
        << design << ": test needs a multi-step audit to interrupt";
  }

  // Durable run, killed mid-stream: checkpoint every step, abandon the
  // session after roughly half the reference iterations without any
  // cleanup call (the in-process stand-in for a crash — every appended
  // frame was already flushed).
  const int crash_after = reference.iterations / 2;
  {
    auto store = AnnotationStore::Open(path);
    ASSERT_TRUE(store.ok()) << design;
    OracleAnnotator oracle;
    StoredAnnotator annotator(&oracle, store->get(), seed);
    auto sampler = make_sampler(kg);
    EvaluationSession session(*sampler, annotator, config, seed);
    CheckpointManager manager(store->get(), seed, CheckpointOptions{});
    for (int i = 0; i < crash_after; ++i) {
      ASSERT_TRUE(session.Step().ok()) << design;
      ASSERT_TRUE(manager.OnStep(session).ok()) << design;
    }
    ASSERT_TRUE(annotator.status().ok()) << design;
  }

  // Fresh-process resume: every object rebuilt, state only from the store.
  {
    auto store = AnnotationStore::Open(path);
    ASSERT_TRUE(store.ok()) << design;
    OracleAnnotator oracle;
    StoredAnnotator annotator(&oracle, store->get(), seed);
    auto sampler = make_sampler(kg);
    EvaluationSession session(*sampler, annotator, config, seed);
    CheckpointManager manager(store->get(), seed, CheckpointOptions{});
    ASSERT_TRUE(manager.CanResume()) << design;
    const auto result = RunDurableAudit(session, manager, &annotator);
    ASSERT_TRUE(result.ok()) << design;
    ASSERT_TRUE(annotator.status().ok()) << design;
    EXPECT_EQ(session.iterations(), reference.iterations) << design;
    ExpectIdenticalResults(reference, *result, config, design);
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, SrsResumesByteIdentical) {
  CheckDesignResumesByteIdentical(
      "SRS",
      [](const KgView& kg) {
        return std::make_unique<SrsSampler>(kg, SrsConfig{});
      },
      401);
}

TEST(CheckpointTest, SrsWithoutReplacementResumesByteIdentical) {
  CheckDesignResumesByteIdentical(
      "SRS-WOR",
      [](const KgView& kg) {
        return std::make_unique<SrsSampler>(
            kg, SrsConfig{.without_replacement = true});
      },
      402);
}

TEST(CheckpointTest, TwcsResumesByteIdentical) {
  CheckDesignResumesByteIdentical(
      "TWCS",
      [](const KgView& kg) {
        return std::make_unique<TwcsSampler>(kg, TwcsConfig{});
      },
      403);
}

TEST(CheckpointTest, WcsResumesByteIdentical) {
  CheckDesignResumesByteIdentical(
      "WCS",
      [](const KgView& kg) {
        return std::make_unique<WcsSampler>(kg, ClusterConfig{});
      },
      404);
}

TEST(CheckpointTest, RcsResumesByteIdentical) {
  CheckDesignResumesByteIdentical(
      "RCS",
      [](const KgView& kg) {
        return std::make_unique<RcsSampler>(kg, ClusterConfig{});
      },
      405);
}

TEST(CheckpointTest, StratifiedResumesByteIdentical) {
  CheckDesignResumesByteIdentical(
      "SSRS",
      [](const KgView& kg) {
        return std::make_unique<StratifiedSampler>(kg, StratifiedConfig{});
      },
      406);
}

TEST(CheckpointTest, SystematicResumesByteIdentical) {
  CheckDesignResumesByteIdentical(
      "SYS",
      [](const KgView& kg) {
        return std::make_unique<SystematicSampler>(kg, SystematicConfig{});
      },
      407);
}

TEST(CheckpointTest, ResumedStepsReplayLabelsFromTheStore) {
  // The economics of recovery: the labels paid between the last checkpoint
  // and the crash are already on file, so the resumed run's re-executed
  // steps consult the store, not the oracle. With checkpoints every 3
  // steps and a crash right before one, up to 2 steps replay — all hits.
  const auto kg = TestKg();
  const EvaluationConfig config = TestConfig();
  const std::string path = TempPath("replay_economics");
  std::remove(path.c_str());
  const uint64_t seed = 408;
  uint64_t labels_at_crash = 0;
  {
    auto store = AnnotationStore::Open(path);
    ASSERT_TRUE(store.ok());
    OracleAnnotator oracle;
    StoredAnnotator annotator(&oracle, store->get(), seed);
    SrsSampler sampler(kg, SrsConfig{});
    EvaluationSession session(sampler, annotator, config, seed);
    CheckpointManager manager(store->get(), seed,
                              CheckpointOptions{.every_steps = 3});
    for (int i = 0; i < 8; ++i) {  // Crash after step 8; checkpoint at 6.
      ASSERT_TRUE(session.Step().ok());
      ASSERT_TRUE(manager.OnStep(session).ok());
    }
    labels_at_crash = (*store)->num_labeled();
  }
  auto store = AnnotationStore::Open(path);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->num_labeled(), labels_at_crash);
  OracleAnnotator oracle;
  StoredAnnotator annotator(&oracle, store->get(), seed);
  SrsSampler sampler(kg, SrsConfig{});
  EvaluationSession session(sampler, annotator, config, seed);
  CheckpointManager manager(store->get(), seed,
                            CheckpointOptions{.every_steps = 3});
  ASSERT_TRUE(manager.Resume(&session).ok());
  EXPECT_EQ(session.iterations(), 6);
  // Re-execute the two lost steps: pure store hits, zero oracle calls.
  ASSERT_TRUE(session.Step().ok());
  ASSERT_TRUE(session.Step().ok());
  EXPECT_EQ(annotator.oracle_calls(), 0u);
  EXPECT_GT(annotator.store_hits(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace kgacc
