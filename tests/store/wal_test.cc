// Write-ahead log recovery semantics: intact frames replay in order; a
// torn or bit-flipped frame severs the chain — everything before it is
// kept, everything from it on is discarded and physically truncated — and
// appending after recovery produces a clean log again.

#include "kgacc/store/wal.h"

#include <unistd.h>

#include <cstdio>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "kgacc/util/codec.h"
#include "kgacc/util/failpoint.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

std::string TempPath(const char* name) {
  return testing::TempDir() + "/kgacc_wal_test_" + name + "_" +
         std::to_string(::getpid());
}

struct Frame {
  uint8_t type;
  std::vector<uint8_t> payload;
};

WriteAheadLog::ReplayFn Collect(std::vector<Frame>* frames) {
  return [frames](uint8_t type, std::span<const uint8_t> payload) {
    frames->push_back(Frame{type, {payload.begin(), payload.end()}});
    return Status::OK();
  };
}

std::vector<uint8_t> Payload(std::initializer_list<uint8_t> bytes) {
  return std::vector<uint8_t>(bytes);
}

/// Reads the raw file bytes.
std::vector<uint8_t> Slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::vector<uint8_t> data;
  uint8_t buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.insert(data.end(), buf, buf + n);
  }
  std::fclose(f);
  return data;
}

void Dump(const std::string& path, const std::vector<uint8_t>& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(data.data(), 1, data.size(), f), data.size());
  std::fclose(f);
}

TEST(WalTest, AppendsReplayInOrderAcrossReopen) {
  const std::string path = TempPath("replay");
  std::remove(path.c_str());
  {
    std::vector<Frame> replayed;
    auto log = WriteAheadLog::Open(path, Collect(&replayed));
    ASSERT_TRUE(log.ok());
    EXPECT_TRUE(replayed.empty());
    ASSERT_TRUE((*log)->Append(1, Payload({1, 2, 3})).ok());
    ASSERT_TRUE((*log)->Append(2, Payload({})).ok());
    ASSERT_TRUE((*log)->Append(1, Payload({0xff})).ok());
    EXPECT_EQ((*log)->frames_appended(), 3u);
  }
  std::vector<Frame> replayed;
  WalRecoveryInfo info;
  auto log = WriteAheadLog::Open(path, Collect(&replayed), &info);
  ASSERT_TRUE(log.ok());
  ASSERT_EQ(replayed.size(), 3u);
  EXPECT_EQ(replayed[0].type, 1);
  EXPECT_EQ(replayed[0].payload, Payload({1, 2, 3}));
  EXPECT_EQ(replayed[1].type, 2);
  EXPECT_TRUE(replayed[1].payload.empty());
  EXPECT_EQ(replayed[2].type, 1);
  EXPECT_EQ(info.frames_replayed, 3u);
  EXPECT_FALSE(info.truncated_tail);
  EXPECT_EQ(info.bytes_discarded, 0u);
  std::remove(path.c_str());
}

TEST(WalTest, TornTailIsTruncatedAndAppendableAgain) {
  const std::string path = TempPath("torn");
  std::remove(path.c_str());
  {
    std::vector<Frame> replayed;
    auto log = WriteAheadLog::Open(path, Collect(&replayed));
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->Append(1, Payload({10, 11})).ok());
    ASSERT_TRUE((*log)->Append(1, Payload({20, 21})).ok());
  }
  // Tear the file mid-frame: keep the first frame and a few bytes of the
  // second — what a crash mid-write leaves behind.
  std::vector<uint8_t> data = Slurp(path);
  const size_t full = data.size();
  data.resize(full - 3);
  Dump(path, data);
  std::vector<Frame> replayed;
  WalRecoveryInfo info;
  {
    auto log = WriteAheadLog::Open(path, Collect(&replayed), &info);
    ASSERT_TRUE(log.ok());
    ASSERT_EQ(replayed.size(), 1u);
    EXPECT_EQ(replayed[0].payload, Payload({10, 11}));
    EXPECT_TRUE(info.truncated_tail);
    EXPECT_GT(info.bytes_discarded, 0u);
    // Appending after recovery lands on a clean frame boundary.
    ASSERT_TRUE((*log)->Append(3, Payload({30})).ok());
  }
  replayed.clear();
  auto log = WriteAheadLog::Open(path, Collect(&replayed), &info);
  ASSERT_TRUE(log.ok());
  ASSERT_EQ(replayed.size(), 2u);
  EXPECT_EQ(replayed[1].type, 3);
  EXPECT_FALSE(info.truncated_tail);
  std::remove(path.c_str());
}

TEST(WalTest, BitFlipSeversTheChainFromThatFrameOn) {
  const std::string path = TempPath("bitflip");
  std::remove(path.c_str());
  size_t first_frame_end = 0;
  {
    auto log = WriteAheadLog::Open(path, nullptr);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->Append(1, Payload({1, 1, 1, 1})).ok());
    first_frame_end = Slurp(path).size();
    ASSERT_TRUE((*log)->Append(1, Payload({2, 2, 2, 2})).ok());
    ASSERT_TRUE((*log)->Append(1, Payload({3, 3, 3, 3})).ok());
  }
  // Flip one payload bit inside the *second* frame: the CRC must reject
  // it, and the intact third frame behind it is unreachable (standard WAL
  // semantics — the chain is severed at the first corruption).
  std::vector<uint8_t> data = Slurp(path);
  data[first_frame_end + 3] ^= 0x10;
  Dump(path, data);
  std::vector<Frame> replayed;
  WalRecoveryInfo info;
  auto log = WriteAheadLog::Open(path, Collect(&replayed), &info);
  ASSERT_TRUE(log.ok());
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0].payload, Payload({1, 1, 1, 1}));
  EXPECT_TRUE(info.truncated_tail);
  EXPECT_EQ(info.bytes_kept, first_frame_end);
  std::remove(path.c_str());
}

TEST(WalTest, GarbageAppendedToCleanLogIsDiscarded) {
  const std::string path = TempPath("garbage");
  std::remove(path.c_str());
  {
    auto log = WriteAheadLog::Open(path, nullptr);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->Append(7, Payload({9})).ok());
  }
  std::vector<uint8_t> data = Slurp(path);
  for (int i = 0; i < 17; ++i) data.push_back(uint8_t(0xc0 + i));
  Dump(path, data);
  std::vector<Frame> replayed;
  WalRecoveryInfo info;
  auto log = WriteAheadLog::Open(path, Collect(&replayed), &info);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(replayed.size(), 1u);
  EXPECT_TRUE(info.truncated_tail);
  EXPECT_EQ(info.bytes_discarded, 17u);
  std::remove(path.c_str());
}

TEST(WalTest, NotAWalFileIsRejected) {
  const std::string path = TempPath("badmagic");
  Dump(path, {'h', 'e', 'l', 'l', 'o', ' ', 'w', 'o', 'r', 'l', 'd'});
  auto log = WriteAheadLog::Open(path, nullptr);
  EXPECT_FALSE(log.ok());
  std::remove(path.c_str());
}

TEST(WalTest, ZeroLengthLogOpensClean) {
  const std::string path = TempPath("zerolen");
  Dump(path, {});  // An empty file: created, never written.
  std::vector<Frame> replayed;
  WalRecoveryInfo info;
  auto log = WriteAheadLog::Open(path, Collect(&replayed), &info);
  ASSERT_TRUE(log.ok());
  EXPECT_TRUE(replayed.empty());
  EXPECT_FALSE(info.truncated_tail);
  // The open stamped the magic, so the log round-trips like any fresh one.
  ASSERT_TRUE((*log)->Append(1, Payload({42})).ok());
  log = WriteAheadLog::Open(path, Collect(&replayed), &info);
  ASSERT_TRUE(log.ok());
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0].payload, Payload({42}));
  std::remove(path.c_str());
}

TEST(WalTest, UnopenablePathIsADescriptiveIoError) {
  // A directory cannot be a log file; a missing parent cannot hold one.
  // (Permission-bit tests do not work here — CI runs as root.)
  for (const std::string path :
       {testing::TempDir(),
        TempPath("no_such_dir") + "/sub/dir/log.wal"}) {
    auto log = WriteAheadLog::Open(path, nullptr);
    ASSERT_FALSE(log.ok());
    EXPECT_EQ(log.status().code(), StatusCode::kIoError);
    // The message names the path and carries the OS reason.
    EXPECT_NE(log.status().message().find(path), std::string::npos)
        << log.status().ToString();
    EXPECT_NE(log.status().message().find(": "), std::string::npos);
  }
}

TEST(WalTest, FailedSyncStickyRejectsAllLaterAppends) {
  const std::string path = TempPath("stickysync");
  std::remove(path.c_str());
  ScopedFailpoints armed("wal.sync=once");
  ASSERT_TRUE(armed.status().ok());
  auto log = WriteAheadLog::Open(path, nullptr);
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE((*log)->Append(1, Payload({1})).ok());
  const Status failed = (*log)->Sync();
  ASSERT_EQ(failed.code(), StatusCode::kIoError);
  EXPECT_EQ((*log)->sticky_error().code(), StatusCode::kIoError);
  // Every later operation returns the original error, file untouched: a
  // log whose write path failed once must not interleave frames after it.
  const std::vector<uint8_t> before = Slurp(path);
  EXPECT_EQ((*log)->Append(2, Payload({2})).ToString(), failed.ToString());
  EXPECT_EQ((*log)->Sync().ToString(), failed.ToString());
  EXPECT_EQ((*log)->Flush().ToString(), failed.ToString());
  EXPECT_EQ(Slurp(path), before);
  EXPECT_EQ((*log)->frames_appended(), 1u);
  // Reopening recovers: the failure was injected, the bytes are intact.
  std::vector<Frame> replayed;
  auto reopened = WriteAheadLog::Open(path, Collect(&replayed));
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(replayed.size(), 1u);
  EXPECT_TRUE((*reopened)->sticky_error().ok());
  std::remove(path.c_str());
}

TEST(WalTest, InjectedAppendFailureIsStickyAndWritesNothing) {
  const std::string path = TempPath("stickyappend");
  std::remove(path.c_str());
  ScopedFailpoints armed("wal.append=once");
  ASSERT_TRUE(armed.status().ok());
  auto log = WriteAheadLog::Open(path, nullptr);
  ASSERT_TRUE(log.ok());
  const std::vector<uint8_t> before = Slurp(path);
  const Status failed = (*log)->Append(1, Payload({1}));
  EXPECT_EQ(failed.code(), StatusCode::kIoError);
  EXPECT_EQ(Slurp(path), before);  // Failed before writing a byte.
  EXPECT_EQ((*log)->Append(1, Payload({1})).ToString(), failed.ToString());
  std::remove(path.c_str());
}

TEST(WalTest, InjectedTornAppendIsRecoveredByReopen) {
  const std::string path = TempPath("injtorn");
  std::remove(path.c_str());
  {
    ScopedFailpoints armed("wal.append.torn=times:1");
    ASSERT_TRUE(armed.status().ok());
    auto log = WriteAheadLog::Open(path, nullptr);
    ASSERT_TRUE(log.ok());
    ASSERT_EQ((*log)->Append(1, Payload({5, 6, 7})).code(),
              StatusCode::kIoError);
  }
  // The file holds a genuine partial frame; recovery truncates it and the
  // log is appendable again.
  std::vector<Frame> replayed;
  WalRecoveryInfo info;
  auto log = WriteAheadLog::Open(path, Collect(&replayed), &info);
  ASSERT_TRUE(log.ok());
  EXPECT_TRUE(replayed.empty());
  EXPECT_TRUE(info.truncated_tail);
  EXPECT_GT(info.bytes_discarded, 0u);
  ASSERT_TRUE((*log)->Append(2, Payload({8})).ok());
  std::remove(path.c_str());
}

TEST(WalTest, ReplayCallbackErrorAbortsOpen) {
  const std::string path = TempPath("cberr");
  std::remove(path.c_str());
  {
    auto log = WriteAheadLog::Open(path, nullptr);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->Append(1, Payload({1})).ok());
  }
  auto log = WriteAheadLog::Open(
      path, [](uint8_t, std::span<const uint8_t>) {
        return Status::IoError("replay rejected");
      });
  EXPECT_FALSE(log.ok());
  EXPECT_EQ(log.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace kgacc
