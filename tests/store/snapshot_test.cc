// Component-level snapshot round trips: every serialized piece of session
// state — RNG, each estimator-accumulator variant, the annotated sample,
// the HPD warm carry, and each stateful sampler design — must restore to a
// state that behaves *identically* going forward, not merely approximately.

#include <cstring>
#include <vector>

#include "kgacc/estimate/accumulator.h"
#include "kgacc/eval/session.h"
#include "kgacc/intervals/ahpd.h"
#include "kgacc/kg/synthetic.h"
#include "kgacc/sampling/cluster.h"
#include "kgacc/sampling/sample.h"
#include "kgacc/sampling/srs.h"
#include "kgacc/sampling/stratified.h"
#include "kgacc/sampling/systematic.h"
#include "kgacc/util/codec.h"
#include "kgacc/util/random.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

SyntheticKg TestKg(uint64_t seed = 21) {
  SyntheticKgConfig cfg;
  cfg.num_clusters = 200;
  cfg.mean_cluster_size = 4.0;
  cfg.accuracy = 0.85;
  cfg.seed = seed;
  return *SyntheticKg::Create(cfg);
}

TEST(SnapshotTest, RngRoundTripContinuesTheIdenticalStream) {
  Rng original(42);
  // Consume an odd number of normals so the spare-value cache is armed —
  // the subtle half of the state a naive save would drop.
  for (int i = 0; i < 7; ++i) original.Normal();
  for (int i = 0; i < 13; ++i) original.Next();
  ByteWriter w;
  original.SaveState(&w);
  Rng restored(999);  // Different seed: everything must come from the snapshot.
  ByteReader r(w.span());
  ASSERT_TRUE(restored.LoadState(&r).ok());
  EXPECT_TRUE(r.empty());
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(original.Next(), restored.Next());
  }
  // And the buffered normal: interleave draws of every flavor.
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(original.Normal(), restored.Normal());
    ASSERT_EQ(original.Uniform(), restored.Uniform());
    ASSERT_EQ(original.Gamma(2.5), restored.Gamma(2.5));
  }
}

TEST(SnapshotTest, RngRejectsTruncatedAndAllZeroState) {
  Rng rng(1);
  ByteWriter w;
  rng.SaveState(&w);
  ByteReader truncated(w.span().subspan(0, w.size() - 1));
  Rng target(2);
  EXPECT_FALSE(target.LoadState(&truncated).ok());
  ByteWriter zeros;
  for (int i = 0; i < 4; ++i) zeros.PutFixed64(0);
  zeros.PutBool(false);
  zeros.PutDouble(0.0);
  ByteReader zero_reader(zeros.span());
  EXPECT_FALSE(target.LoadState(&zero_reader).ok());
}

AnnotatedUnit RandomUnit(Rng* rng, uint32_t strata) {
  AnnotatedUnit unit;
  unit.cluster = rng->UniformInt(1000);
  unit.cluster_population = 1 + rng->UniformInt(40);
  unit.stratum = static_cast<uint32_t>(rng->UniformInt(strata));
  unit.drawn = 1 + static_cast<uint32_t>(
                       rng->UniformInt(unit.cluster_population));
  unit.correct = static_cast<uint32_t>(rng->UniformInt(unit.drawn + 1));
  return unit;
}

TEST(SnapshotTest, EveryAccumulatorVariantRoundTripsMidStream) {
  const EstimatorKind kinds[] = {EstimatorKind::kSrs, EstimatorKind::kCluster,
                                 EstimatorKind::kRcs,
                                 EstimatorKind::kStratified};
  const std::vector<double> weights = {0.5, 0.3, 0.2};
  for (const EstimatorKind kind : kinds) {
    Rng rng(static_cast<uint64_t>(kind) + 100);
    EstimatorAccumulator original(kind);
    for (int i = 0; i < 200; ++i) original.Add(RandomUnit(&rng, 3));
    ByteWriter w;
    original.SaveState(&w);
    EstimatorAccumulator restored(kind);
    ByteReader r(w.span());
    ASSERT_TRUE(restored.LoadState(&r).ok());
    EXPECT_TRUE(r.empty());
    // Identical estimates now...
    const auto want = original.Estimate(&weights);
    const auto got = restored.Estimate(&weights);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(want->mu, got->mu);
    EXPECT_EQ(want->variance, got->variance);
    EXPECT_EQ(want->n, got->n);
    // ...and identical estimates after both ingest the same future stream
    // (the running doubles must restore bit-exact, not re-derived).
    Rng future_a(7), future_b(7);
    for (int i = 0; i < 50; ++i) {
      original.Add(RandomUnit(&future_a, 3));
      restored.Add(RandomUnit(&future_b, 3));
    }
    const auto want2 = original.Estimate(&weights);
    const auto got2 = restored.Estimate(&weights);
    ASSERT_TRUE(want2.ok() && got2.ok());
    EXPECT_EQ(want2->mu, got2->mu);
    EXPECT_EQ(want2->variance, got2->variance);
  }
}

TEST(SnapshotTest, AccumulatorRejectsKindMismatch) {
  EstimatorAccumulator srs(EstimatorKind::kSrs);
  ByteWriter w;
  srs.SaveState(&w);
  EstimatorAccumulator cluster(EstimatorKind::kCluster);
  ByteReader r(w.span());
  EXPECT_FALSE(cluster.LoadState(&r).ok());
}

TEST(SnapshotTest, AnnotatedSampleRoundTripsTotalsHistoryAndDistinctSets) {
  for (const bool retain : {true, false}) {
    Rng rng(retain ? 5u : 6u);
    AnnotatedSample original;
    original.set_retain_units(retain);
    for (int i = 0; i < 300; ++i) {
      const AnnotatedUnit unit = RandomUnit(&rng, 2);
      for (uint32_t d = 0; d < unit.drawn; ++d) {
        original.MarkAnnotated(TripleRef{unit.cluster, d});
      }
      original.Add(unit);
    }
    ByteWriter w;
    original.SaveState(&w);
    AnnotatedSample restored;
    ByteReader r(w.span());
    ASSERT_TRUE(restored.LoadState(&r).ok());
    EXPECT_TRUE(r.empty());
    EXPECT_EQ(restored.retain_units(), retain);
    EXPECT_EQ(restored.num_units(), original.num_units());
    EXPECT_EQ(restored.num_triples(), original.num_triples());
    EXPECT_EQ(restored.num_correct(), original.num_correct());
    EXPECT_EQ(restored.num_distinct_entities(),
              original.num_distinct_entities());
    EXPECT_EQ(restored.num_distinct_triples(),
              original.num_distinct_triples());
    ASSERT_EQ(restored.units().size(), original.units().size());
    for (size_t i = 0; i < original.units().size(); ++i) {
      EXPECT_EQ(restored.units()[i].cluster, original.units()[i].cluster);
      EXPECT_EQ(restored.units()[i].correct, original.units()[i].correct);
    }
    // Re-marking a known triple is recognized as a duplicate after restore.
    Rng probe(retain ? 5u : 6u);
    const AnnotatedUnit first = RandomUnit(&probe, 2);
    EXPECT_FALSE(restored.MarkAnnotated(TripleRef{first.cluster, 0}));
  }
}

TEST(SnapshotTest, ReservoirSubsampleRoundTripsAndContinuesDeterministic) {
  // With retention off, the sample keeps a seeded Algorithm-R reservoir
  // instead of the full unit history. Two requirements: identical streams
  // and seeds give identical reservoirs, and a Save/LoadState round trip
  // restores both the kept units and the replacement RNG mid-stream.
  const auto compare = [](const AnnotatedSample& x, const AnnotatedSample& y) {
    ASSERT_EQ(x.reservoir_units().size(), y.reservoir_units().size());
    for (size_t i = 0; i < x.reservoir_units().size(); ++i) {
      EXPECT_EQ(x.reservoir_units()[i].cluster, y.reservoir_units()[i].cluster);
      EXPECT_EQ(x.reservoir_units()[i].cluster_population,
                y.reservoir_units()[i].cluster_population);
      EXPECT_EQ(x.reservoir_units()[i].stratum, y.reservoir_units()[i].stratum);
      EXPECT_EQ(x.reservoir_units()[i].drawn, y.reservoir_units()[i].drawn);
      EXPECT_EQ(x.reservoir_units()[i].correct, y.reservoir_units()[i].correct);
    }
  };
  AnnotatedSample a, b;
  a.set_retain_units(false);
  b.set_retain_units(false);
  a.EnableReservoir(32, 99);
  b.EnableReservoir(32, 99);
  Rng stream_a(4), stream_b(4);
  for (int i = 0; i < 500; ++i) {
    a.Add(RandomUnit(&stream_a, 2));
    b.Add(RandomUnit(&stream_b, 2));
  }
  EXPECT_TRUE(a.units().empty());  // Full history stays dropped.
  ASSERT_EQ(a.reservoir_units().size(), 32u);
  compare(a, b);

  ByteWriter w;
  a.SaveState(&w);
  AnnotatedSample restored;
  ByteReader r(w.span());
  ASSERT_TRUE(restored.LoadState(&r).ok());
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(restored.reservoir_capacity(), 32u);
  compare(a, restored);

  // The replacement stream continues bit-exact after restore: same future
  // units land in the same slots.
  Rng future_a(9), future_b(9);
  for (int i = 0; i < 200; ++i) {
    a.Add(RandomUnit(&future_a, 2));
    restored.Add(RandomUnit(&future_b, 2));
  }
  EXPECT_EQ(a.num_units(), restored.num_units());
  compare(a, restored);
}

TEST(SnapshotTest, ReservoirKeepsEverythingUnderCapacity) {
  AnnotatedSample sample;
  sample.set_retain_units(false);
  sample.EnableReservoir(64, 7);
  Rng rng(11);
  for (int i = 0; i < 20; ++i) sample.Add(RandomUnit(&rng, 2));
  // Fewer units than slots: the reservoir IS the history, in arrival order.
  EXPECT_EQ(sample.reservoir_units().size(), 20u);
  EXPECT_EQ(sample.num_units(), 20u);
}

TEST(SnapshotTest, AhpdWarmStateRoundTripsEveryField) {
  AhpdWarmState original;
  original.Sync(3);
  original.priors[0].valid = true;
  original.priors[0].tau = 17.25;
  original.priors[0].n = 120.5;
  original.priors[0].alpha = 0.05;
  original.priors[0].hpd.interval = {0.71234567891234, 0.83456789123456};
  original.priors[0].hpd.shape = BetaShape::kUnimodal;
  original.priors[0].hpd.solver_iterations = 5;
  original.priors[0].hpd.path = HpdPath::kNewton;
  original.priors[0].hpd.cdf_evals = 10;
  original.priors[0].hpd.pdf_evals = 10;
  original.priors[0].hpd.quantile_evals = 2;
  original.priors[0].hpd.kkt_coverage_residual = 1e-13;
  original.priors[0].hpd.kkt_density_residual = -3e-10;
  original.priors[0].has_hessian = true;
  original.priors[0].hessian = {1.5, -0.25, -0.25, 2.5};
  original.priors[0].hpd.has_hessian = true;
  original.priors[0].hpd.hessian = {1.0, 0.0, 0.0, 1.0};
  original.priors[2].valid = true;
  original.priors[2].hpd.path = HpdPath::kSlsqpFallback;

  ByteWriter w;
  SaveAhpdWarmState(original, &w);
  AhpdWarmState restored;
  ByteReader r(w.span());
  ASSERT_TRUE(LoadAhpdWarmState(&r, &restored).ok());
  EXPECT_TRUE(r.empty());
  ASSERT_EQ(restored.priors.size(), 3u);
  const auto& p0 = restored.priors[0];
  EXPECT_TRUE(p0.valid);
  EXPECT_EQ(p0.tau, 17.25);
  EXPECT_EQ(p0.n, 120.5);
  EXPECT_EQ(p0.alpha, 0.05);
  EXPECT_EQ(p0.hpd.interval.lower, 0.71234567891234);
  EXPECT_EQ(p0.hpd.interval.upper, 0.83456789123456);
  EXPECT_EQ(p0.hpd.path, HpdPath::kNewton);
  EXPECT_EQ(p0.hpd.solver_iterations, 5);
  EXPECT_EQ(p0.hpd.kkt_density_residual, -3e-10);
  EXPECT_TRUE(p0.has_hessian);
  EXPECT_EQ(p0.hessian, (std::array<double, 4>{1.5, -0.25, -0.25, 2.5}));
  EXPECT_FALSE(restored.priors[1].valid);
  EXPECT_EQ(restored.priors[2].hpd.path, HpdPath::kSlsqpFallback);
}

/// Draws `steps` batches, saves the sampler, restores into a fresh clone,
/// and verifies the next `steps` batches agree draw for draw under
/// identical Rng streams.
void CheckSamplerRoundTrip(const KgView& kg, Sampler& original,
                           uint64_t seed, int steps) {
  Rng rng(seed);
  SampleBatch batch;
  original.Reset();
  for (int i = 0; i < steps; ++i) {
    ASSERT_TRUE(original.NextBatch(&rng, &batch).ok());
  }
  ByteWriter w;
  original.SaveState(&w);
  ByteWriter rng_state;
  rng.SaveState(&rng_state);

  std::unique_ptr<Sampler> restored = original.Clone();
  ASSERT_NE(restored, nullptr);
  ByteReader r(w.span());
  restored->Reset();
  ASSERT_TRUE(restored->LoadState(&r).ok());
  EXPECT_TRUE(r.empty());
  Rng restored_rng(0);
  ByteReader rng_reader(rng_state.span());
  ASSERT_TRUE(restored_rng.LoadState(&rng_reader).ok());

  SampleBatch batch_a, batch_b;
  for (int i = 0; i < steps; ++i) {
    ASSERT_TRUE(original.NextBatch(&rng, &batch_a).ok());
    ASSERT_TRUE(restored->NextBatch(&restored_rng, &batch_b).ok());
    ASSERT_EQ(batch_a.size(), batch_b.size());
    for (size_t u = 0; u < batch_a.size(); ++u) {
      EXPECT_EQ(batch_a.unit(u).cluster, batch_b.unit(u).cluster);
      EXPECT_EQ(batch_a.unit(u).stratum, batch_b.unit(u).stratum);
      const auto offs_a = batch_a.offsets(u);
      const auto offs_b = batch_b.offsets(u);
      ASSERT_EQ(offs_a.size(), offs_b.size());
      for (size_t k = 0; k < offs_a.size(); ++k) {
        EXPECT_EQ(offs_a[k], offs_b[k]);
      }
    }
  }
}

TEST(SnapshotTest, SrsWithoutReplacementStateRoundTrips) {
  const auto kg = TestKg();
  SrsSampler sampler(kg, SrsConfig{.batch_size = 30,
                                   .without_replacement = true});
  CheckSamplerRoundTrip(kg, sampler, 11, 6);
}

TEST(SnapshotTest, SystematicSweepPositionRoundTrips) {
  const auto kg = TestKg();
  SystematicSampler sampler(kg, SystematicConfig{.batch_size = 25,
                                                 .skip = 13});
  CheckSamplerRoundTrip(kg, sampler, 12, 6);
}

TEST(SnapshotTest, StratifiedAllocationCarryRoundTrips) {
  const auto kg = TestKg();
  StratifiedSampler sampler(kg, StratifiedConfig{.batch_size = 17});
  CheckSamplerRoundTrip(kg, sampler, 13, 6);
}

TEST(SnapshotTest, StatelessClusterSamplersRoundTripTrivially) {
  const auto kg = TestKg();
  TwcsSampler twcs(kg, TwcsConfig{});
  CheckSamplerRoundTrip(kg, twcs, 14, 4);
  WcsSampler wcs(kg, ClusterConfig{});
  CheckSamplerRoundTrip(kg, wcs, 15, 4);
  RcsSampler rcs(kg, ClusterConfig{});
  CheckSamplerRoundTrip(kg, rcs, 16, 4);
}

TEST(SnapshotTest, SessionSnapshotRejectsOtherFormatVersions) {
  // v2 inserted fields mid-payload (reservoir capacity + subsample); a
  // payload stamped with another version must fail the explicit version
  // gate up front, not misparse with every later field shifted by one.
  const auto kg = TestKg();
  OracleAnnotator annotator;
  SrsSampler sampler(kg, SrsConfig{});
  EvaluationConfig config;
  EvaluationSession session(sampler, annotator, config, 42);
  ASSERT_TRUE(session.Step().ok());
  ByteWriter w;
  session.SaveState(&w);
  std::vector<uint8_t> bytes(w.span().begin(), w.span().end());
  ASSERT_FALSE(bytes.empty());
  bytes[0] = 1;  // The pre-reservoir format.
  EvaluationSession same(sampler, annotator, config, 42);
  ByteReader r({bytes.data(), bytes.size()});
  const Status status = same.LoadState(&r);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("incompatible"), std::string::npos)
      << status.ToString();
}

TEST(SnapshotTest, SessionSnapshotRejectsFingerprintMismatch) {
  const auto kg = TestKg();
  OracleAnnotator annotator;
  SrsSampler sampler(kg, SrsConfig{});
  EvaluationConfig config;
  EvaluationSession session(sampler, annotator, config, 42);
  ASSERT_TRUE(session.Step().ok());
  ByteWriter w;
  session.SaveState(&w);

  // Different seed.
  {
    EvaluationSession other(sampler, annotator, config, 43);
    ByteReader r(w.span());
    EXPECT_FALSE(other.LoadState(&r).ok());
  }
  // Different interval method.
  {
    EvaluationConfig wald = config;
    wald.method = IntervalMethod::kWald;
    EvaluationSession other(sampler, annotator, wald, 42);
    ByteReader r(w.span());
    EXPECT_FALSE(other.LoadState(&r).ok());
  }
  // Different design.
  {
    TwcsSampler twcs(kg, TwcsConfig{});
    EvaluationSession other(twcs, annotator, config, 42);
    ByteReader r(w.span());
    EXPECT_FALSE(other.LoadState(&r).ok());
  }
  // Same prior *count* but different prior parameters: a snapshot solved
  // under one prior set must not restore under another.
  {
    EvaluationConfig other_priors = config;
    ASSERT_FALSE(other_priors.priors.empty());
    other_priors.priors[0].a += 1.0;
    EvaluationSession other(sampler, annotator, other_priors, 42);
    ByteReader r(w.span());
    EXPECT_FALSE(other.LoadState(&r).ok());
  }
  // Matching everything: accepted.
  {
    EvaluationSession same(sampler, annotator, config, 42);
    ByteReader r(w.span());
    EXPECT_TRUE(same.LoadState(&r).ok());
    EXPECT_TRUE(r.empty());
    EXPECT_EQ(same.iterations(), session.iterations());
  }
}

}  // namespace
}  // namespace kgacc
