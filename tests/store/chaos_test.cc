// Chaos testing for the durable-audit stack: randomized (but seeded, hence
// reproducible) failpoint schedules are armed over the WAL and annotation
// store while an audit runs and is abandoned mid-stream; the store is then
// reopened with injection disarmed and the audit resumed in fresh objects.
// The invariants, per ISSUE: every successful resume lands on a report
// byte-identical to the uninjected reference run, no round ever observes a
// torn store (recovery always reopens), and rounds where faults actually
// fired report them through the retry/degradation counters.

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "kgacc/eval/report.h"
#include "kgacc/kg/synthetic.h"
#include "kgacc/sampling/cluster.h"
#include "kgacc/sampling/srs.h"
#include "kgacc/store/checkpoint.h"
#include "kgacc/util/failpoint.h"
#include "kgacc/util/random.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

std::string TempPath(const char* name, int round) {
  return testing::TempDir() + "/kgacc_chaos_test_" + name + "_" +
         std::to_string(round) + "_" + std::to_string(::getpid());
}

SyntheticKg TestKg() {
  SyntheticKgConfig cfg;
  cfg.num_clusters = 500;
  cfg.mean_cluster_size = 3.5;
  cfg.accuracy = 0.82;
  cfg.seed = 31;
  return *SyntheticKg::Create(cfg);
}

EvaluationConfig TestConfig() {
  EvaluationConfig config;  // aHPD, alpha = eps = 0.05.
  config.record_trace = true;
  return config;
}

/// Near-zero retry delays: chaos rounds exercise logic, not wall clocks.
BackoffPolicy FastBackoff() {
  BackoffPolicy policy;
  policy.initial_delay_ms = 0.0001;
  policy.max_delay_ms = 0.001;
  return policy;
}

/// The injection surface: every site on the durable write path. `wal.sync`
/// is reachable because the chaos store syncs its checkpoint frames.
constexpr const char* kSites[] = {"wal.append", "wal.append.torn", "wal.sync",
                                  "store.append", "store.checkpoint"};

/// Draws a random schedule: each site is independently left unarmed or
/// armed with a random policy. Everything flows from `rng`, so a failing
/// round is reproducible from its round index alone.
std::string RandomSchedule(Rng* rng) {
  std::string spec;
  for (const char* site : kSites) {
    if (rng->Uniform() < 0.5) continue;
    std::string policy;
    switch (rng->UniformInt(3)) {
      case 0:
        policy = "once";
        break;
      case 1:
        policy = "every:" + std::to_string(2 + rng->UniformInt(6));
        break;
      default:
        policy = "prob:0." + std::to_string(1 + rng->UniformInt(3)) +
                 ":seed:" + std::to_string(1 + rng->UniformInt(1 << 20));
        break;
    }
    if (!spec.empty()) spec += ";";
    spec += std::string(site) + "=" + policy;
  }
  return spec;
}

/// Faults fired across all sites during the armed window.
uint64_t TotalFailuresFired() {
  uint64_t fired = 0;
  for (const char* site : kSites) {
    fired += FailpointRegistry::Instance().Stats(site).failures;
  }
  return fired;
}

/// The byte-identical acceptance criterion, literally: bitwise field
/// equality plus rendered-report equality.
void ExpectIdenticalResults(const EvaluationResult& a,
                            const EvaluationResult& b,
                            const EvaluationConfig& config, int round) {
  EXPECT_EQ(a.mu, b.mu) << "round " << round;
  EXPECT_EQ(a.interval.lower, b.interval.lower) << "round " << round;
  EXPECT_EQ(a.interval.upper, b.interval.upper) << "round " << round;
  EXPECT_EQ(a.annotated_triples, b.annotated_triples) << "round " << round;
  EXPECT_EQ(a.distinct_triples, b.distinct_triples) << "round " << round;
  EXPECT_EQ(a.iterations, b.iterations) << "round " << round;
  EXPECT_EQ(a.winning_prior, b.winning_prior) << "round " << round;
  EXPECT_EQ(a.cost_seconds, b.cost_seconds) << "round " << round;
  EXPECT_EQ(a.converged, b.converged) << "round " << round;
  EXPECT_EQ(a.stop_reason, b.stop_reason) << "round " << round;
  ReportContext context;
  context.dataset_name = "chaos-test";
  context.design_name = "chaos";
  EXPECT_EQ(RenderJsonReport(context, config, a),
            RenderJsonReport(context, config, b))
      << "round " << round;
  EXPECT_EQ(RenderTextReport(context, config, a),
            RenderTextReport(context, config, b))
      << "round " << round;
}

TEST(ChaosTest, RandomFailpointSchedulesNeverBreakResumeExactness) {
  const auto kg = TestKg();
  const EvaluationConfig config = TestConfig();
  const uint64_t seed = 7001;

  // Uninjected reference: no store, no failpoints.
  EvaluationResult reference;
  {
    OracleAnnotator oracle;
    SrsSampler sampler(kg, SrsConfig{});
    EvaluationSession session(sampler, oracle, config, seed);
    const auto result = session.Run();
    ASSERT_TRUE(result.ok());
    reference = *result;
    ASSERT_GE(reference.iterations, 3)
        << "chaos needs a multi-step audit to interrupt";
  }

  AnnotationStore::Options store_options;
  store_options.sync_checkpoints = true;  // Makes wal.sync reachable.

  StoredAnnotator::Options stored_options;
  stored_options.backoff = FastBackoff();  // Degrade mode is the default.

  CheckpointOptions manager_options;
  manager_options.backoff = FastBackoff();

  int rounds_with_faults = 0;
  constexpr int kRounds = 10;
  for (int round = 0; round < kRounds; ++round) {
    Rng rng(0xc4a05 + uint64_t(round));
    const std::string schedule = RandomSchedule(&rng);
    const std::string path = TempPath("resume", round);
    std::remove(path.c_str());

    // Phase 1 — the injected run, abandoned mid-stream without cleanup
    // (the in-process stand-in for a crash). Degrade mode keeps the audit
    // alive through exhausted retries; only the random interruption or the
    // session's own convergence ends it.
    uint64_t faults_fired = 0;
    bool reported_trouble = false;
    {
      ScopedFailpoints armed(schedule);  // Empty schedule arms nothing.
      ASSERT_TRUE(armed.status().ok()) << schedule;
      auto store = AnnotationStore::Open(path, store_options);
      ASSERT_TRUE(store.ok()) << "round " << round << ": " << schedule;
      OracleAnnotator oracle;
      StoredAnnotator annotator(&oracle, store->get(), seed, stored_options);
      SrsSampler sampler(kg, SrsConfig{});
      EvaluationSession session(sampler, annotator, config, seed);
      CheckpointManager manager(store->get(), seed, manager_options);
      const uint64_t stop_after =
          1 + rng.UniformInt(uint64_t(reference.iterations));
      for (uint64_t i = 0; i < stop_after && !session.done(); ++i) {
        ASSERT_TRUE(session.Step().ok())
            << "round " << round << ": " << schedule;
        ASSERT_TRUE(manager.OnStep(session).ok())
            << "round " << round << ": " << schedule;
      }
      // Degrade mode: injected write failures must never surface as a
      // sticky audit-fatal status.
      EXPECT_TRUE(annotator.status().ok())
          << "round " << round << ": " << schedule;
      faults_fired = TotalFailuresFired();
      reported_trouble = annotator.degraded() || manager.degraded() ||
                         annotator.retries() + manager.retries() > 0;
    }

    // Invariant: faults that fired are visible in the robustness counters.
    if (faults_fired > 0) {
      ++rounds_with_faults;
      EXPECT_TRUE(reported_trouble)
          << "round " << round << " fired " << faults_fired
          << " faults silently: " << schedule;
    }

    // Phase 2 — disarmed resume in fresh objects. The store must reopen
    // (no torn store, ever: a torn tail is truncated, not fatal) and the
    // finished audit must match the uninjected reference byte for byte.
    {
      auto store = AnnotationStore::Open(path, store_options);
      ASSERT_TRUE(store.ok())
          << "round " << round << " left a torn store: " << schedule;
      OracleAnnotator oracle;
      StoredAnnotator annotator(&oracle, store->get(), seed, stored_options);
      SrsSampler sampler(kg, SrsConfig{});
      EvaluationSession session(sampler, annotator, config, seed);
      CheckpointManager manager(store->get(), seed, manager_options);
      const auto result = RunDurableAudit(session, manager, &annotator);
      ASSERT_TRUE(result.ok()) << "round " << round << ": " << schedule;
      ASSERT_TRUE(annotator.status().ok());
      EXPECT_FALSE(annotator.degraded());
      EXPECT_EQ(annotator.retries(), 0u);
      ExpectIdenticalResults(reference, *result, config, round);
    }
    std::remove(path.c_str());
  }
  // The schedule space is seeded: across the fixed rounds at least one
  // must actually inject (otherwise the test silently tests nothing).
  EXPECT_GT(rounds_with_faults, 0);
}

TEST(ChaosTest, CompactionCrashMatrixLeavesStoreRecoverable) {
  // Every failable compaction phase, injected one at a time: the store
  // must come back on either the old log (pre-rename failures) or the new
  // one (post-rename), with the identical label set and latest checkpoint
  // — never torn, never half-rewritten. A successful retry then proves the
  // failure left nothing sticky behind.
  const auto kg = TestKg();
  const EvaluationConfig config = TestConfig();
  constexpr const char* kCompactSites[] = {
      "store.compact.write", "store.compact.sync", "store.compact.rename",
      "store.compact.dirsync"};
  int site_index = 0;
  for (const char* site : kCompactSites) {
    SCOPED_TRACE(site);
    const std::string path = TempPath("compact_matrix", site_index++);
    std::remove(path.c_str());

    // Seed: one finished audit plus a re-audit for checkpoint garbage.
    uint64_t labels_before = 0;
    std::vector<uint8_t> checkpoint_before;
    {
      auto store = AnnotationStore::Open(path);
      ASSERT_TRUE(store.ok());
      for (int round = 0; round < 2; ++round) {
        OracleAnnotator oracle;
        StoredAnnotator annotator(&oracle, store->get(), 1);
        SrsSampler sampler(kg, SrsConfig{});
        EvaluationSession session(sampler, annotator, config, 61);
        CheckpointManager manager(store->get(), 1, CheckpointOptions{});
        ASSERT_TRUE(RunDurableAudit(session, manager, &annotator).ok());
      }
      labels_before = (*store)->num_labeled();
      ASSERT_GT(labels_before, 0u);
      ASSERT_TRUE((*store)->LatestCheckpoint(1).has_value());
      checkpoint_before = *(*store)->LatestCheckpoint(1);

      // The injected compaction: every phase failure surfaces as a
      // non-OK status, and the store object is then abandoned without
      // cleanup — the in-process stand-in for crashing at that phase.
      ScopedFailpoints armed(std::string(site) + "=once");
      ASSERT_TRUE(armed.status().ok());
      EXPECT_FALSE((*store)->Compact().ok());
      EXPECT_EQ(FailpointRegistry::Instance().Stats(site).failures, 1u);
    }

    // Disarmed reopen: whichever log the failure left installed replays to
    // the identical index.
    auto store = AnnotationStore::Open(path);
    ASSERT_TRUE(store.ok()) << site << " left an unopenable store";
    EXPECT_EQ((*store)->num_labeled(), labels_before);
    ASSERT_TRUE((*store)->LatestCheckpoint(1).has_value());
    EXPECT_EQ(*(*store)->LatestCheckpoint(1), checkpoint_before);
    // Nothing sticky: the next compaction succeeds and changes nothing
    // about the live state.
    ASSERT_TRUE((*store)->Compact().ok());
    EXPECT_EQ((*store)->num_labeled(), labels_before);
    EXPECT_EQ(*(*store)->LatestCheckpoint(1), checkpoint_before);
    EXPECT_EQ((*store)->garbage_ratio(), 0.0);
    std::remove(path.c_str());
  }
}

TEST(ChaosTest, RandomSchedulesWithAutoCompactionKeepResumeExactness) {
  // The full collision: group-commit writes, per-step checkpoints, and
  // garbage-ratio-triggered compactions racing randomized faults on every
  // write-path *and* compaction-path site. Auto-compaction is best-effort
  // (a failed attempt must never fail the append that tripped it), so the
  // invariant is unchanged from the plain chaos loop: the disarmed resume
  // is byte-identical to the uninjected reference.
  const auto kg = TestKg();
  const EvaluationConfig config = TestConfig();
  const uint64_t seed = 7301;

  EvaluationResult reference;
  {
    OracleAnnotator oracle;
    SrsSampler sampler(kg, SrsConfig{});
    EvaluationSession session(sampler, oracle, config, seed);
    const auto result = session.Run();
    ASSERT_TRUE(result.ok());
    reference = *result;
    ASSERT_GE(reference.iterations, 3);
  }

  AnnotationStore::Options store_options;
  store_options.sync_checkpoints = true;
  // Aggressive thresholds so compactions actually fire inside the short
  // armed window of each round.
  store_options.auto_compact_garbage_ratio = 0.3;
  store_options.auto_compact_min_bytes = 1 << 12;

  StoredAnnotator::Options stored_options;
  stored_options.backoff = FastBackoff();
  CheckpointOptions manager_options;
  manager_options.backoff = FastBackoff();

  constexpr const char* kAllSites[] = {
      "wal.append", "wal.append.torn", "wal.sync", "store.append",
      "store.checkpoint", "store.compact.write", "store.compact.sync",
      "store.compact.rename", "store.compact.dirsync"};
  uint64_t compactions_observed = 0;
  constexpr int kRounds = 8;
  for (int round = 0; round < kRounds; ++round) {
    Rng rng(0xc09ac7 + uint64_t(round));
    std::string schedule;
    for (const char* site : kAllSites) {
      if (rng.Uniform() < 0.5) continue;
      if (!schedule.empty()) schedule += ";";
      schedule += std::string(site) + "=every:" +
                  std::to_string(2 + rng.UniformInt(5));
    }
    const std::string path = TempPath("auto_compact", round);
    std::remove(path.c_str());

    // Two abandoned injected attempts back to back: the second replays the
    // first's checkpoints, superseding them — garbage enough to cross the
    // auto-compaction threshold while faults are still armed.
    {
      ScopedFailpoints armed(schedule);
      ASSERT_TRUE(armed.status().ok()) << schedule;
      for (int attempt = 0; attempt < 2; ++attempt) {
        auto store = AnnotationStore::Open(path, store_options);
        ASSERT_TRUE(store.ok()) << "round " << round << ": " << schedule;
        OracleAnnotator oracle;
        StoredAnnotator annotator(&oracle, store->get(), seed,
                                  stored_options);
        SrsSampler sampler(kg, SrsConfig{});
        EvaluationSession session(sampler, annotator, config, seed);
        CheckpointManager manager(store->get(), seed, manager_options);
        if (manager.CanResume()) {
          ASSERT_TRUE(manager.Resume(&session).ok())
              << "round " << round << ": " << schedule;
        }
        const uint64_t stop_after =
            1 + rng.UniformInt(uint64_t(reference.iterations));
        for (uint64_t i = 0; i < stop_after && !session.done(); ++i) {
          ASSERT_TRUE(session.Step().ok())
              << "round " << round << ": " << schedule;
          ASSERT_TRUE(manager.OnStep(session).ok())
              << "round " << round << ": " << schedule;
        }
        EXPECT_TRUE(annotator.status().ok())
            << "round " << round << ": " << schedule;
        compactions_observed += (*store)->compaction_stats().compactions;
      }
    }

    // Disarmed resume in fresh objects: byte-identical finish.
    {
      auto store = AnnotationStore::Open(path, store_options);
      ASSERT_TRUE(store.ok())
          << "round " << round << " left a torn store: " << schedule;
      OracleAnnotator oracle;
      StoredAnnotator annotator(&oracle, store->get(), seed, stored_options);
      SrsSampler sampler(kg, SrsConfig{});
      EvaluationSession session(sampler, annotator, config, seed);
      CheckpointManager manager(store->get(), seed, manager_options);
      const auto result = RunDurableAudit(session, manager, &annotator);
      ASSERT_TRUE(result.ok()) << "round " << round << ": " << schedule;
      ExpectIdenticalResults(reference, *result, config, round);
    }
    std::remove(path.c_str());
  }
  // The thresholds are tuned so compaction genuinely participates in the
  // chaos — otherwise this test is the plain schedule test again.
  EXPECT_GT(compactions_observed, 0u);
}

TEST(ChaosTest, FailFastModeSurfacesExhaustedWriteErrors) {
  // The configurable alternative to degradation: a store whose appends
  // keep failing must stick the error in status() and stop the audit.
  const auto kg = TestKg();
  const EvaluationConfig config = TestConfig();
  const std::string path = TempPath("failfast", 0);
  std::remove(path.c_str());

  ScopedFailpoints armed("store.append=prob:1");
  ASSERT_TRUE(armed.status().ok());
  auto store = AnnotationStore::Open(path);
  ASSERT_TRUE(store.ok());
  OracleAnnotator oracle;
  StoredAnnotator::Options options;
  options.write_error_mode = StoredAnnotator::WriteErrorMode::kFailFast;
  options.backoff = FastBackoff();
  StoredAnnotator annotator(&oracle, store->get(), 1, options);
  SrsSampler sampler(kg, SrsConfig{});
  EvaluationSession session(sampler, annotator, config, 9);
  ASSERT_TRUE(session.Step().ok());
  EXPECT_EQ(annotator.status().code(), StatusCode::kIoError);
  EXPECT_FALSE(annotator.degraded());
  EXPECT_GT(annotator.retries(), 0u);
  // RunDurableAudit's per-step status check is what aborts the audit.
  CheckpointManager manager(store->get(), 1, CheckpointOptions{});
  const auto result = RunDurableAudit(session, manager, &annotator);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(ChaosTest, DegradedStoreKeepsServingCachedLabels) {
  // Degraded read-only mode end to end: labels stored before the fault
  // keep serving from the index (zero oracle calls), new judgments fall
  // through to the live annotator and are counted as dropped.
  const auto kg = TestKg();
  const EvaluationConfig config = TestConfig();
  const std::string path = TempPath("degraded", 0);
  std::remove(path.c_str());

  // Seed the store with a complete healthy audit.
  uint64_t labels_on_file = 0;
  {
    auto store = AnnotationStore::Open(path);
    ASSERT_TRUE(store.ok());
    OracleAnnotator oracle;
    StoredAnnotator annotator(&oracle, store->get(), 1);
    SrsSampler sampler(kg, SrsConfig{});
    EvaluationSession session(sampler, annotator, config, 21);
    ASSERT_TRUE(session.Run().ok());
    ASSERT_TRUE(annotator.status().ok());
    labels_on_file = (*store)->num_labeled();
    ASSERT_GT(labels_on_file, 0u);
  }

  // Re-audit with a different seed under a permanently failing WAL: the
  // overlap serves from the store, the rest is re-judged live and dropped.
  StoredAnnotator::Options options;
  options.backoff = FastBackoff();
  ScopedFailpoints armed("wal.append=prob:1");
  ASSERT_TRUE(armed.status().ok());
  auto store = AnnotationStore::Open(path);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->num_labeled(), labels_on_file);
  OracleAnnotator oracle;
  StoredAnnotator annotator(&oracle, store->get(), 2, options);
  SrsSampler sampler(kg, SrsConfig{});
  EvaluationSession session(sampler, annotator, config, 22);
  const auto result = session.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(annotator.status().ok());  // Degrade, not fail.
  EXPECT_TRUE(annotator.degraded());
  EXPECT_EQ(annotator.degraded_cause().code(), StatusCode::kIoError);
  EXPECT_GT(annotator.labels_dropped(), 0u);
  EXPECT_GT(annotator.store_hits(), 0u);  // Cached labels kept serving.
  // Nothing new was persisted.
  EXPECT_EQ((*store)->num_labeled(), labels_on_file);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace kgacc
