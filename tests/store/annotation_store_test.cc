// AnnotationStore semantics: labels are durable across reopen, immutable
// once stored, shared across audits (the StoredAnnotator answers stored
// triples without touching the inner oracle — asserted down to "a second
// same-task audit performs zero oracle calls"), and checkpoints interleave
// with the annotation records in the same log with latest-wins retention
// per audit id.

#include "kgacc/store/annotation_store.h"

#include <unistd.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "kgacc/eval/session.h"
#include "kgacc/kg/synthetic.h"
#include "kgacc/sampling/srs.h"
#include "kgacc/util/codec.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

std::string TempPath(const char* name) {
  return testing::TempDir() + "/kgacc_store_test_" + name + "_" +
         std::to_string(::getpid());
}

std::vector<uint8_t> Bytes(std::initializer_list<uint8_t> b) { return b; }

TEST(AnnotationStoreTest, LabelsPersistAcrossReopen) {
  const std::string path = TempPath("persist");
  std::remove(path.c_str());
  {
    auto store = AnnotationStore::Open(path);
    ASSERT_TRUE(store.ok());
    EXPECT_EQ((*store)->num_labeled(), 0u);
    ASSERT_TRUE((*store)->Append(7, 3, 1, true).ok());
    ASSERT_TRUE((*store)->Append(7, 3, 2, false).ok());
    ASSERT_TRUE((*store)->Append(7, 900, 0, true).ok());
    EXPECT_EQ((*store)->num_labeled(), 3u);
  }
  auto store = AnnotationStore::Open(path);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->num_labeled(), 3u);
  EXPECT_EQ((*store)->stats().records_replayed, 3u);
  EXPECT_EQ((*store)->Lookup(3, 1), std::optional<bool>(true));
  EXPECT_EQ((*store)->Lookup(3, 2), std::optional<bool>(false));
  EXPECT_EQ((*store)->Lookup(900, 0), std::optional<bool>(true));
  EXPECT_EQ((*store)->Lookup(3, 3), std::nullopt);
  // Sequence numbers continue past the replayed records.
  EXPECT_EQ((*store)->next_seq(), 3u);
  std::remove(path.c_str());
}

TEST(AnnotationStoreTest, StoredLabelsAreImmutable) {
  const std::string path = TempPath("immutable");
  std::remove(path.c_str());
  auto store = AnnotationStore::Open(path);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Append(1, 5, 5, true).ok());
  // Same label: idempotent no-op.
  EXPECT_TRUE((*store)->Append(2, 5, 5, true).ok());
  EXPECT_EQ((*store)->num_labeled(), 1u);
  // Conflicting label: rejected, stored value unchanged.
  const Status conflict = (*store)->Append(2, 5, 5, false);
  EXPECT_EQ(conflict.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ((*store)->Lookup(5, 5), std::optional<bool>(true));
  std::remove(path.c_str());
}

TEST(AnnotationStoreTest, RacingConflictingLabelsSurfaceTheConflict) {
  // Regression: two writers racing the same *novel* key with opposite
  // labels can both pass the immutability pre-check. Both frames reach the
  // log and the first apply wins — the loser must then get the same
  // FailedPrecondition a serial caller gets; an OK would certify a label
  // that replay contradicts.
  const std::string path = TempPath("conflict_race");
  std::remove(path.c_str());
  auto store = AnnotationStore::Open(path);
  ASSERT_TRUE(store.ok());
  constexpr uint64_t kKeys = 512;
  std::vector<Status> as_true(kKeys), as_false(kKeys);
  std::thread t1([&] {
    for (uint64_t k = 0; k < kKeys; ++k) {
      as_true[k] = (*store)->Append(/*audit_id=*/1, k, 1, true);
    }
  });
  std::thread t2([&] {
    for (uint64_t k = 0; k < kKeys; ++k) {
      as_false[k] = (*store)->Append(/*audit_id=*/2, k, 1, false);
    }
  });
  t1.join();
  t2.join();
  for (uint64_t k = 0; k < kKeys; ++k) {
    // Exactly one side owns the stored label; the other saw the conflict
    // (whether its pre-check or its post-log apply detected it).
    ASSERT_NE(as_true[k].ok(), as_false[k].ok()) << "key " << k;
    EXPECT_EQ(as_true[k].ok() ? as_false[k].code() : as_true[k].code(),
              StatusCode::kFailedPrecondition)
        << "key " << k;
    EXPECT_EQ((*store)->Lookup(k, 1), std::optional<bool>(as_true[k].ok()))
        << "key " << k;
  }
  // Replay agrees with what the callers were told.
  store->reset();
  auto reopened = AnnotationStore::Open(path);
  ASSERT_TRUE(reopened.ok());
  for (uint64_t k = 0; k < kKeys; ++k) {
    EXPECT_EQ((*reopened)->Lookup(k, 1),
              std::optional<bool>(as_true[k].ok()))
        << "key " << k;
  }
  std::remove(path.c_str());
}

TEST(AnnotationStoreTest, CheckpointsAreLatestWinsPerAuditId) {
  const std::string path = TempPath("checkpoints");
  std::remove(path.c_str());
  {
    auto store = AnnotationStore::Open(path);
    ASSERT_TRUE(store.ok());
    const auto v1 = Bytes({1, 1});
    const auto v2 = Bytes({2, 2, 2});
    const auto other = Bytes({9});
    ASSERT_TRUE((*store)->AppendCheckpoint(42, {v1.data(), v1.size()}).ok());
    ASSERT_TRUE((*store)->Append(42, 0, 1, true).ok());
    ASSERT_TRUE(
        (*store)->AppendCheckpoint(77, {other.data(), other.size()}).ok());
    ASSERT_TRUE((*store)->AppendCheckpoint(42, {v2.data(), v2.size()}).ok());
  }
  auto store = AnnotationStore::Open(path);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->LatestCheckpoint(42).has_value());
  EXPECT_EQ(*(*store)->LatestCheckpoint(42), Bytes({2, 2, 2}));
  ASSERT_TRUE((*store)->LatestCheckpoint(77).has_value());
  EXPECT_EQ(*(*store)->LatestCheckpoint(77), Bytes({9}));
  EXPECT_FALSE((*store)->LatestCheckpoint(1).has_value());
  EXPECT_EQ((*store)->stats().checkpoints_replayed, 3u);
  std::remove(path.c_str());
}

TEST(AnnotationStoreTest, CorruptTailRecoversToLastConsistentCheckpoint) {
  const std::string path = TempPath("corrupt_tail");
  std::remove(path.c_str());
  size_t good_prefix = 0;
  {
    auto store = AnnotationStore::Open(path);
    ASSERT_TRUE(store.ok());
    const auto v1 = Bytes({1});
    ASSERT_TRUE((*store)->Append(5, 1, 1, true).ok());
    ASSERT_TRUE((*store)->AppendCheckpoint(5, {v1.data(), v1.size()}).ok());
    std::FILE* f = std::fopen(path.c_str(), "rb");
    std::fseek(f, 0, SEEK_END);
    good_prefix = static_cast<size_t>(std::ftell(f));
    std::fclose(f);
    const auto v2 = Bytes({2});
    ASSERT_TRUE((*store)->Append(5, 2, 2, true).ok());
    ASSERT_TRUE((*store)->AppendCheckpoint(5, {v2.data(), v2.size()}).ok());
  }
  // Flip a bit in the first frame past the good prefix (the second
  // annotation record): the newer checkpoint behind it is severed, and
  // recovery lands on the older consistent one.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, static_cast<long>(good_prefix + 2), SEEK_SET);
    int byte = std::fgetc(f);
    std::fseek(f, static_cast<long>(good_prefix + 2), SEEK_SET);
    std::fputc(byte ^ 0x40, f);
    std::fclose(f);
  }
  auto store = AnnotationStore::Open(path);
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE((*store)->stats().recovery.truncated_tail);
  EXPECT_EQ((*store)->num_labeled(), 1u);  // Second record discarded.
  ASSERT_TRUE((*store)->LatestCheckpoint(5).has_value());
  EXPECT_EQ(*(*store)->LatestCheckpoint(5), Bytes({1}));
  std::remove(path.c_str());
}

TEST(AnnotationStoreTest, StoredAnnotatorCountsHitsAndOracleCalls) {
  const std::string path = TempPath("counters");
  std::remove(path.c_str());
  SyntheticKgConfig cfg;
  cfg.num_clusters = 50;
  cfg.mean_cluster_size = 3.0;
  cfg.accuracy = 0.8;
  cfg.seed = 3;
  const auto kg = *SyntheticKg::Create(cfg);
  auto store = AnnotationStore::Open(path);
  ASSERT_TRUE(store.ok());
  OracleAnnotator oracle;
  StoredAnnotator first(&oracle, store->get(), 1);
  // First pass over some triples: all misses, all appended.
  uint64_t expected = 0;
  for (uint64_t cluster = 0; cluster < 10; ++cluster) {
    const uint64_t size = kg.cluster_size(cluster);
    for (uint64_t offset = 0; offset < size; ++offset) {
      first.Annotate(kg, TripleRef{cluster, offset}, nullptr);
      ++expected;
    }
  }
  EXPECT_EQ(first.oracle_calls(), expected);
  EXPECT_EQ(first.store_hits(), 0u);
  EXPECT_TRUE(first.status().ok());
  EXPECT_EQ((*store)->num_labeled(), expected);
  // Second pass (a different audit): pure hits, zero oracle calls, and the
  // answers match the ground truth exactly.
  StoredAnnotator second(&oracle, store->get(), 2);
  for (uint64_t cluster = 0; cluster < 10; ++cluster) {
    const uint64_t size = kg.cluster_size(cluster);
    for (uint64_t offset = 0; offset < size; ++offset) {
      const TripleRef ref{cluster, offset};
      EXPECT_EQ(second.Annotate(kg, ref, nullptr),
                oracle.Annotate(kg, ref, nullptr));
    }
  }
  EXPECT_EQ(second.oracle_calls(), 0u);
  EXPECT_EQ(second.store_hits(), expected);
  std::remove(path.c_str());
}

TEST(AnnotationStoreTest, SecondAuditOverSameKgPaysZeroOracleCalls) {
  // The headline reuse property: audit once against a store, then run the
  // same audit task again (fresh process simulated by reopening) — every
  // triple the second audit draws is already labeled, so the oracle is
  // never consulted.
  const std::string path = TempPath("reuse");
  std::remove(path.c_str());
  SyntheticKgConfig cfg;
  cfg.num_clusters = 400;
  cfg.mean_cluster_size = 3.0;
  cfg.accuracy = 0.85;
  cfg.seed = 9;
  const auto kg = *SyntheticKg::Create(cfg);
  EvaluationConfig config;  // aHPD defaults.
  EvaluationResult first_result;
  {
    auto store = AnnotationStore::Open(path);
    ASSERT_TRUE(store.ok());
    OracleAnnotator oracle;
    StoredAnnotator annotator(&oracle, store->get(), 1);
    SrsSampler sampler(kg, SrsConfig{});
    EvaluationSession session(sampler, annotator, config, 1234);
    const auto result = session.Run();
    ASSERT_TRUE(result.ok());
    first_result = *result;
    EXPECT_GT(annotator.oracle_calls(), 0u);
    EXPECT_TRUE(annotator.status().ok());
  }
  auto store = AnnotationStore::Open(path);
  ASSERT_TRUE(store.ok());
  OracleAnnotator oracle;
  StoredAnnotator annotator(&oracle, store->get(), 2);
  SrsSampler sampler(kg, SrsConfig{});
  EvaluationSession session(sampler, annotator, config, 1234);
  const auto result = session.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(annotator.oracle_calls(), 0u);
  EXPECT_EQ(annotator.store_hits(), result->annotated_triples);
  // Identical labels, identical seed: identical audit.
  EXPECT_EQ(result->mu, first_result.mu);
  EXPECT_EQ(result->annotated_triples, first_result.annotated_triples);
  EXPECT_EQ(result->interval.lower, first_result.interval.lower);
  EXPECT_EQ(result->interval.upper, first_result.interval.upper);
  std::remove(path.c_str());
}

TEST(AnnotationStoreTest, BurnRngDrawsConsumesExactlyWhatAnnotateWould) {
  SyntheticKgConfig cfg;
  cfg.num_clusters = 20;
  cfg.mean_cluster_size = 3.0;
  cfg.accuracy = 0.8;
  cfg.seed = 5;
  const auto kg = *SyntheticKg::Create(cfg);
  NoisyAnnotator noisy(0.2);
  MajorityVoteAnnotator vote(3, 0.2);
  OracleAnnotator oracle;
  for (Annotator* annotator :
       std::vector<Annotator*>{&noisy, &vote, &oracle}) {
    // Annotate on one stream, BurnRngDraws on a same-seeded twin: both must
    // leave their Rng in the identical state — the parity the store-hit
    // burning rests on.
    Rng judged(99), burned(99);
    annotator->Annotate(kg, TripleRef{0, 0}, &judged);
    annotator->BurnRngDraws(&burned);
    for (int i = 0; i < 4; ++i) EXPECT_EQ(judged.Next(), burned.Next());
  }
}

TEST(AnnotationStoreTest, BurningHitsKeepsStoreBackedRunsBitwiseEqual) {
  // A session feeds one Rng to both its sampler and its annotator, so with
  // a stochastic annotator a silent store hit shifts every later draw —
  // including which triples get sampled next. With burn_rng_on_hits the
  // all-hits rerun must follow the bare run bit for bit.
  const std::string path = TempPath("burn_rng");
  std::remove(path.c_str());
  SyntheticKgConfig cfg;
  cfg.num_clusters = 400;
  cfg.mean_cluster_size = 3.0;
  cfg.accuracy = 0.85;
  cfg.seed = 13;
  const auto kg = *SyntheticKg::Create(cfg);
  EvaluationConfig config;
  const uint64_t seed = 4321;

  NoisyAnnotator bare(0.15);
  EvaluationResult bare_result;
  {
    SrsSampler sampler(kg, SrsConfig{.without_replacement = true});
    EvaluationSession session(sampler, bare, config, seed);
    const auto result = session.Run();
    ASSERT_TRUE(result.ok());
    bare_result = *result;
  }

  auto store = AnnotationStore::Open(path);
  ASSERT_TRUE(store.ok());
  {
    // Populate: all misses delegate to the inner annotator on the live Rng,
    // so the populating run already matches the bare run exactly.
    NoisyAnnotator inner(0.15);
    StoredAnnotator populating(&inner, store->get(), 1);
    SrsSampler sampler(kg, SrsConfig{.without_replacement = true});
    EvaluationSession session(sampler, populating, config, seed);
    const auto result = session.Run();
    ASSERT_TRUE(result.ok());
    ASSERT_TRUE(populating.status().ok());
    EXPECT_EQ(populating.store_hits(), 0u);
    EXPECT_EQ(result->mu, bare_result.mu);
    EXPECT_EQ(result->annotated_triples, bare_result.annotated_triples);
  }
  {
    // Rerun against the populated store with burning on: pure hits, zero
    // inner calls, and a bitwise-identical audit.
    NoisyAnnotator inner(0.15);
    StoredAnnotator burning(&inner, store->get(), 2,
                            StoredAnnotator::Options{.burn_rng_on_hits = true});
    SrsSampler sampler(kg, SrsConfig{.without_replacement = true});
    EvaluationSession session(sampler, burning, config, seed);
    const auto result = session.Run();
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(burning.oracle_calls(), 0u);
    EXPECT_EQ(burning.store_hits(), result->annotated_triples);
    EXPECT_EQ(result->mu, bare_result.mu);
    EXPECT_EQ(result->annotated_triples, bare_result.annotated_triples);
    EXPECT_EQ(result->interval.lower, bare_result.interval.lower);
    EXPECT_EQ(result->interval.upper, bare_result.interval.upper);
    EXPECT_EQ(result->iterations, bare_result.iterations);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace kgacc
