// Size-tiered compaction semantics: Compact() rewrites the live label set
// plus the latest checkpoint per audit into a fresh trailer-sealed log that
// replay verifies end to end. The tests pin the acceptance criteria from
// ISSUE: after many re-audits of the same task the compacted log shrinks to
// within 1.1x of its live bytes, a post-compaction resume is byte-identical,
// the trailer catches tampered rewrites, stale temp files are swept at Open,
// the mmap and streamed replay paths agree, a dirsync failure after the
// rename is reported without losing the installed log, and the garbage-ratio
// trigger compacts automatically.

#include "kgacc/store/compaction.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "kgacc/eval/session.h"
#include "kgacc/kg/synthetic.h"
#include "kgacc/sampling/srs.h"
#include "kgacc/store/annotation_store.h"
#include "kgacc/store/checkpoint.h"
#include "kgacc/store/log_format.h"
#include "kgacc/util/codec.h"
#include "kgacc/util/failpoint.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

std::string TempPath(const char* name) {
  return testing::TempDir() + "/kgacc_compaction_test_" + name + "_" +
         std::to_string(::getpid());
}

SyntheticKg TestKg() {
  SyntheticKgConfig cfg;
  cfg.num_clusters = 500;
  cfg.mean_cluster_size = 3.5;
  cfg.accuracy = 0.82;
  cfg.seed = 31;
  return *SyntheticKg::Create(cfg);
}

/// One complete checkpointed audit against the store. Re-running it with
/// the same audit id and seed is the paper's repeat-audit workload: every
/// label is a store hit, but each step's checkpoint supersedes the last —
/// pure garbage accumulation.
void RunAudit(AnnotationStore* store, const SyntheticKg& kg,
              uint64_t audit_id, uint64_t seed) {
  EvaluationConfig config;
  OracleAnnotator oracle;
  StoredAnnotator annotator(&oracle, store, audit_id);
  SrsSampler sampler(kg, SrsConfig{});
  EvaluationSession session(sampler, annotator, config, seed);
  CheckpointManager manager(store, audit_id, CheckpointOptions{});
  const auto result = RunDurableAudit(session, manager, &annotator);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(annotator.status().ok());
}

/// Every stored label, keyed by (cluster, offset) — the byte-identical
/// comparison unit for compaction and replay equivalence.
std::map<std::pair<uint64_t, uint64_t>, bool> AllLabels(
    const AnnotationStore& store, const SyntheticKg& kg) {
  std::map<std::pair<uint64_t, uint64_t>, bool> labels;
  for (uint64_t cluster = 0; cluster < kg.num_clusters(); ++cluster) {
    for (uint64_t offset = 0; offset < kg.cluster_size(cluster); ++offset) {
      const auto label = store.Lookup(cluster, offset);
      if (label.has_value()) labels[{cluster, offset}] = *label;
    }
  }
  return labels;
}

TEST(CompactionTest, RepeatedReauditsCompactToNearLiveSize) {
  const auto kg = TestKg();
  const std::string path = TempPath("shrink");
  std::remove(path.c_str());
  auto store = AnnotationStore::Open(path);
  ASSERT_TRUE(store.ok());
  // Ten-plus re-audits of the same task: one live label set, ten layers of
  // superseded checkpoints.
  for (int round = 0; round < 12; ++round) {
    RunAudit(store->get(), kg, /*audit_id=*/1, /*seed=*/4242);
  }
  const auto labels_before = AllLabels(**store, kg);
  const uint64_t live_before = (*store)->live_bytes();
  const uint64_t bytes_before = (*store)->file_bytes();
  const uint64_t next_seq_before = (*store)->next_seq();
  ASSERT_GT((*store)->garbage_ratio(), 0.5);

  ASSERT_TRUE((*store)->Compact().ok());

  // The acceptance bound: within 1.1x of the live bytes measured before
  // compaction (the rewrite adds only the trailer frame).
  EXPECT_LT((*store)->file_bytes(), bytes_before);
  EXPECT_LE(double((*store)->file_bytes()), 1.1 * double(live_before));
  EXPECT_EQ((*store)->garbage_ratio(), 0.0);
  EXPECT_EQ(AllLabels(**store, kg), labels_before);
  EXPECT_EQ((*store)->next_seq(), next_seq_before);
  EXPECT_EQ((*store)->compaction_stats().compactions, 1u);

  // The offline verifier proves the rewrite: trailer counts + chained CRC.
  const auto verify = VerifyStoreLog(path);
  ASSERT_TRUE(verify.ok()) << verify.status().ToString();
  EXPECT_TRUE(verify->compacted);
  EXPECT_TRUE(verify->clean_tail);

  // Replay of the compacted log restores the identical index, and carried
  // sequence numbers stay monotone across the swap.
  store->reset();
  auto reopened = AnnotationStore::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->stats().trailers_replayed, 1u);
  EXPECT_EQ(AllLabels(**reopened, kg), labels_before);
  EXPECT_EQ((*reopened)->next_seq(), next_seq_before);
  std::remove(path.c_str());
}

TEST(CompactionTest, PostCompactionResumeIsByteIdentical) {
  const auto kg = TestKg();
  const EvaluationConfig config;
  const uint64_t seed = 9119;

  EvaluationResult reference;
  {
    OracleAnnotator oracle;
    SrsSampler sampler(kg, SrsConfig{});
    EvaluationSession session(sampler, oracle, config, seed);
    const auto result = session.Run();
    ASSERT_TRUE(result.ok());
    reference = *result;
    ASSERT_GE(reference.iterations, 3);
  }

  const std::string path = TempPath("resume");
  std::remove(path.c_str());
  // Abandon a checkpointed audit partway through...
  {
    auto store = AnnotationStore::Open(path);
    ASSERT_TRUE(store.ok());
    OracleAnnotator oracle;
    StoredAnnotator annotator(&oracle, store->get(), seed);
    SrsSampler sampler(kg, SrsConfig{});
    EvaluationSession session(sampler, annotator, config, seed);
    CheckpointManager manager(store->get(), seed, CheckpointOptions{});
    for (int i = 0; i < reference.iterations / 2 && !session.done(); ++i) {
      ASSERT_TRUE(session.Step().ok());
      ASSERT_TRUE(manager.OnStep(session).ok());
    }
  }
  // ...compact the half-finished store in a separate process stand-in...
  {
    auto store = AnnotationStore::Open(path);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Compact().ok());
  }
  // ...and resume from the compacted log: byte-identical finish.
  auto store = AnnotationStore::Open(path);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->stats().trailers_replayed, 1u);
  OracleAnnotator oracle;
  StoredAnnotator annotator(&oracle, store->get(), seed);
  SrsSampler sampler(kg, SrsConfig{});
  EvaluationSession session(sampler, annotator, config, seed);
  CheckpointManager manager(store->get(), seed, CheckpointOptions{});
  ASSERT_TRUE(manager.CanResume());
  const auto result = RunDurableAudit(session, manager, &annotator);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->mu, reference.mu);
  EXPECT_EQ(result->interval.lower, reference.interval.lower);
  EXPECT_EQ(result->interval.upper, reference.interval.upper);
  EXPECT_EQ(result->annotated_triples, reference.annotated_triples);
  EXPECT_EQ(result->iterations, reference.iterations);
  EXPECT_EQ(result->stop_reason, reference.stop_reason);
  // The resumed half replayed labels from the store instead of the oracle.
  EXPECT_GT(annotator.store_hits(), 0u);
  std::remove(path.c_str());
}

/// Handcrafts a compacted log: one annotation record plus a trailer whose
/// fields the caller can falsify. Framing CRCs are valid throughout — the
/// defect is semantic, which is exactly what the trailer exists to catch.
void WriteLogWithTrailer(const std::string& path, uint64_t claimed_records,
                         bool corrupt_live_crc) {
  ByteWriter out;
  out.PutBytes(walfmt::kMagic, walfmt::kMagicSize);
  Crc32cChain chain;
  ByteWriter payload;
  payload.PutVarint(0);  // Rewrite-owned audit id.
  payload.PutVarint(0);  // seq
  payload.PutVarint(3);  // cluster
  payload.PutVarint(1);  // offset
  payload.PutBool(true);
  chain.Extend(payload.span());
  walfmt::AppendFrame(&out, walfmt::kAnnotationFrame, payload.span());
  payload.Clear();
  payload.PutVarint(1);  // Trailer version.
  payload.PutVarint(claimed_records);
  payload.PutVarint(0);  // checkpoints
  payload.PutVarint(1);  // carried next_seq
  payload.PutFixed32(corrupt_live_crc ? chain.value() ^ 0xdeadbeef
                                      : chain.value());
  walfmt::AppendFrame(&out, walfmt::kCompactionTrailerFrame, payload.span());
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(out.bytes().data(), 1, out.size(), f), out.size());
  std::fclose(f);
}

TEST(CompactionTest, TrailerCountMismatchIsCorruptionNotTornTail) {
  const std::string path = TempPath("badcount");
  WriteLogWithTrailer(path, /*claimed_records=*/2, /*corrupt_live_crc=*/false);
  // Every frame CRC passes, so this cannot be truncated away as a torn
  // tail: it is a lying rewrite, and both the verifier and recovery must
  // refuse it outright.
  EXPECT_FALSE(VerifyStoreLog(path).ok());
  EXPECT_FALSE(AnnotationStore::Open(path).ok());
  std::remove(path.c_str());
}

TEST(CompactionTest, TrailerLiveCrcMismatchIsCorruption) {
  const std::string path = TempPath("badcrc");
  WriteLogWithTrailer(path, /*claimed_records=*/1, /*corrupt_live_crc=*/true);
  EXPECT_FALSE(VerifyStoreLog(path).ok());
  EXPECT_FALSE(AnnotationStore::Open(path).ok());
  // The honest twin opens fine — the rejection above is the trailer check,
  // not a decoding accident.
  WriteLogWithTrailer(path, /*claimed_records=*/1, /*corrupt_live_crc=*/false);
  const auto verify = VerifyStoreLog(path);
  ASSERT_TRUE(verify.ok());
  EXPECT_TRUE(verify->compacted);
  auto store = AnnotationStore::Open(path);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->Lookup(3, 1), std::optional<bool>(true));
  std::remove(path.c_str());
}

TEST(CompactionTest, StaleCompactionTempIsRemovedAtOpen) {
  const std::string path = TempPath("staletmp");
  const std::string tmp = path + ".compact";
  std::remove(path.c_str());
  {
    auto store = AnnotationStore::Open(path);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Append(1, 2, 3, true).ok());
  }
  // A crash between writing and renaming the temp leaves it behind; the
  // next Open must sweep it so a later compaction starts clean.
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("half-written rewrite", f);
  std::fclose(f);
  auto store = AnnotationStore::Open(path);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->Lookup(2, 3), std::optional<bool>(true));
  EXPECT_NE(::access(tmp.c_str(), F_OK), 0) << "stale temp survived Open";
  std::remove(path.c_str());
}

TEST(CompactionTest, MmapAndStreamedReplayAgree) {
  const auto kg = TestKg();
  const std::string path = TempPath("mmap");
  std::remove(path.c_str());
  {
    auto store = AnnotationStore::Open(path);
    ASSERT_TRUE(store.ok());
    RunAudit(store->get(), kg, /*audit_id=*/1, /*seed=*/77);
    ASSERT_TRUE((*store)->Compact().ok());
    RunAudit(store->get(), kg, /*audit_id=*/2, /*seed=*/78);
  }

  // Default replay maps the log.
  uint64_t labeled_mmap = 0, next_seq_mmap = 0;
  std::map<std::pair<uint64_t, uint64_t>, bool> labels_mmap;
  {
    auto store = AnnotationStore::Open(path);
    ASSERT_TRUE(store.ok());
    EXPECT_TRUE((*store)->stats().recovery.used_mmap);
    labeled_mmap = (*store)->num_labeled();
    next_seq_mmap = (*store)->next_seq();
    labels_mmap = AllLabels(**store, kg);
  }

  // `store.mmap` armed: mmap(2) is treated as unavailable and recovery
  // takes the streaming pread path — with identical results.
  ScopedFailpoints armed("store.mmap=prob:1");
  ASSERT_TRUE(armed.status().ok());
  auto store = AnnotationStore::Open(path);
  ASSERT_TRUE(store.ok());
  EXPECT_FALSE((*store)->stats().recovery.used_mmap);
  EXPECT_EQ((*store)->num_labeled(), labeled_mmap);
  EXPECT_EQ((*store)->next_seq(), next_seq_mmap);
  EXPECT_EQ(AllLabels(**store, kg), labels_mmap);
  const auto verify = VerifyStoreLog(path);
  ASSERT_TRUE(verify.ok());
  EXPECT_FALSE(verify->used_mmap);
  std::remove(path.c_str());
}

TEST(CompactionTest, DirsyncFailureAfterRenameIsReportedNotFatal) {
  // The regression pinned by ISSUE's small fix: the rename alone does not
  // make the swap durable — the parent directory must be fsynced. When
  // that dirsync fails the new log is already what the path names, so the
  // store must report the error yet keep running on the installed log.
  const auto kg = TestKg();
  const std::string path = TempPath("dirsync");
  std::remove(path.c_str());
  auto store = AnnotationStore::Open(path);
  ASSERT_TRUE(store.ok());
  for (int round = 0; round < 3; ++round) {
    RunAudit(store->get(), kg, /*audit_id=*/1, /*seed=*/55);
  }
  const auto labels = AllLabels(**store, kg);
  const uint64_t bytes_before = (*store)->file_bytes();

  ScopedFailpoints armed("store.compact.dirsync=once");
  ASSERT_TRUE(armed.status().ok());
  const Status compacted = (*store)->Compact();
  EXPECT_EQ(compacted.code(), StatusCode::kIoError);
  EXPECT_NE(compacted.ToString().find("dirsync"), std::string::npos)
      << compacted.ToString();
  // The failpoint must actually have been evaluated, or this test pins
  // nothing.
  EXPECT_EQ(
      FailpointRegistry::Instance().Stats("store.compact.dirsync").failures,
      1u);

  // Reported, not fatal: the compacted log is installed, the handle
  // swapped, and writes keep landing on the new log.
  EXPECT_EQ((*store)->compaction_stats().compactions, 1u);
  EXPECT_LT((*store)->file_bytes(), bytes_before);
  EXPECT_EQ(AllLabels(**store, kg), labels);
  ASSERT_TRUE((*store)->Append(9, 9001, 0, true).ok());
  ASSERT_TRUE((*store)->Flush().ok());

  store->reset();
  auto reopened = AnnotationStore::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->stats().trailers_replayed, 1u);
  EXPECT_EQ((*reopened)->Lookup(9001, 0), std::optional<bool>(true));
  std::remove(path.c_str());
}

TEST(CompactionTest, GarbageRatioTriggersAutoCompaction) {
  const auto kg = TestKg();
  const std::string path = TempPath("auto");
  std::remove(path.c_str());
  AnnotationStore::Options options;
  options.auto_compact_garbage_ratio = 0.4;
  options.auto_compact_min_bytes = 1 << 12;
  auto store = AnnotationStore::Open(path, options);
  ASSERT_TRUE(store.ok());
  for (int round = 0; round < 8; ++round) {
    RunAudit(store->get(), kg, /*audit_id=*/1, /*seed=*/123);
    if ((*store)->compaction_stats().auto_compactions > 0) break;
  }
  EXPECT_GT((*store)->compaction_stats().auto_compactions, 0u);
  // The trigger is a maintenance detail, never a correctness event: the
  // audit still resumes/finishes and the label set is intact.
  EXPECT_LT((*store)->garbage_ratio(), 0.4);
  const auto labels = AllLabels(**store, kg);
  EXPECT_EQ(uint64_t(labels.size()), (*store)->num_labeled());
  store->reset();
  auto reopened = AnnotationStore::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(AllLabels(**reopened, kg), labels);
  std::remove(path.c_str());
}

TEST(CompactionTest, CompactionNeverDropsConcurrentlyAcknowledgedAppends) {
  // Regression for the quiesce race: an empty commit queue is not
  // quiescence. A follower whose frame the leader already settled can
  // still be blocked re-acquiring the commit lock to run its index apply;
  // a Compact() winning that lock first would snapshot an index missing
  // the record and install a rewritten log that omits a durably
  // acknowledged append. The store counts in-flight commits and Compact
  // waits them out — hammer appenders against a compaction loop and
  // require every acknowledged label to survive a reopen.
  const std::string path = TempPath("concurrent_compact");
  std::remove(path.c_str());
  auto store = AnnotationStore::Open(path);
  ASSERT_TRUE(store.ok());

  constexpr uint64_t kWriters = 4;
  constexpr uint64_t kKeysPerWriter = 400;
  std::atomic<bool> stop{false};
  std::thread compactor([&] {
    while (!stop.load(std::memory_order_acquire)) {
      EXPECT_TRUE((*store)->Compact().ok());
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  std::vector<std::thread> writers;
  for (uint64_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (uint64_t i = 0; i < kKeysPerWriter; ++i) {
        const uint64_t cluster = w * kKeysPerWriter + i;
        EXPECT_TRUE(
            (*store)->Append(/*audit_id=*/7, cluster, 0, cluster % 3 == 0)
                .ok());
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  compactor.join();

  ASSERT_EQ((*store)->num_labeled(), kWriters * kKeysPerWriter);
  store->reset();
  auto reopened = AnnotationStore::Open(path);
  ASSERT_TRUE(reopened.ok());
  for (uint64_t cluster = 0; cluster < kWriters * kKeysPerWriter; ++cluster) {
    ASSERT_EQ((*reopened)->Lookup(cluster, 0),
              std::optional<bool>(cluster % 3 == 0))
        << "acknowledged label for cluster " << cluster
        << " lost across a concurrent compaction";
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace kgacc
