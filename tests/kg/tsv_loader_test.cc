#include "kgacc/kg/tsv_loader.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace kgacc {
namespace {

TEST(TsvLoaderTest, ParsesWellFormedContent) {
  const std::string content =
      "# a comment\n"
      "alice\tbornIn\tparis\t1\n"
      "\n"
      "alice\tworksAt\tacme\t0\n"
      "bob\tbornIn\trome\t1\n";
  const auto kg = LoadKgFromTsvString(content);
  ASSERT_TRUE(kg.ok()) << kg.status().ToString();
  EXPECT_EQ(kg->num_triples(), 3u);
  EXPECT_EQ(kg->num_clusters(), 2u);
  EXPECT_NEAR(kg->TrueAccuracy(), 2.0 / 3.0, 1e-12);
}

TEST(TsvLoaderTest, HandlesWindowsLineEndings) {
  const auto kg = LoadKgFromTsvString("a\tp\to\t1\r\nb\tp\to\t0\r\n");
  ASSERT_TRUE(kg.ok());
  EXPECT_EQ(kg->num_triples(), 2u);
}

TEST(TsvLoaderTest, RejectsWrongFieldCount) {
  const auto r = LoadKgFromTsvString("a\tp\t1\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(TsvLoaderTest, RejectsBadLabel) {
  EXPECT_FALSE(LoadKgFromTsvString("a\tp\to\tyes\n").ok());
  EXPECT_FALSE(LoadKgFromTsvString("a\tp\to\t2\n").ok());
}

TEST(TsvLoaderTest, RejectsEmptyTerm) {
  EXPECT_FALSE(LoadKgFromTsvString("\tp\to\t1\n").ok());
  EXPECT_FALSE(LoadKgFromTsvString("a\t\to\t1\n").ok());
}

TEST(TsvLoaderTest, RejectsEmptyInput) {
  EXPECT_FALSE(LoadKgFromTsvString("# only comments\n").ok());
}

TEST(TsvLoaderTest, ErrorMessagesNameTheLine) {
  const auto r = LoadKgFromTsvString("a\tp\to\t1\nbad line\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

TEST(TsvLoaderTest, MissingFileIsIoError) {
  const auto r = LoadKgFromTsv("/nonexistent/path/to/kg.tsv");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(TsvLoaderTest, WriteThenLoadRoundTrips) {
  const std::string content =
      "alice\tbornIn\tparis\t1\n"
      "alice\tworksAt\tacme\t0\n"
      "bob\tbornIn\trome\t1\n"
      "carol\tknows\talice\t1\n";
  const auto kg = *LoadKgFromTsvString(content);

  const std::string path = ::testing::TempDir() + "/kgacc_roundtrip.tsv";
  ASSERT_TRUE(WriteKgToTsv(kg, path).ok());
  const auto reloaded = LoadKgFromTsv(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded->num_triples(), kg.num_triples());
  EXPECT_EQ(reloaded->num_clusters(), kg.num_clusters());
  EXPECT_DOUBLE_EQ(reloaded->TrueAccuracy(), kg.TrueAccuracy());
  std::remove(path.c_str());
}

TEST(TsvLoaderTest, WriteToUnwritablePathFails) {
  const auto kg = *LoadKgFromTsvString("a\tp\to\t1\n");
  EXPECT_FALSE(WriteKgToTsv(kg, "/nonexistent/dir/out.tsv").ok());
}

}  // namespace
}  // namespace kgacc
