#include "kgacc/kg/knowledge_graph.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

KnowledgeGraph MakeSmallKg() {
  KnowledgeGraphBuilder builder;
  builder.Add("alice", "bornIn", "paris", true);
  builder.Add("alice", "worksAt", "acme", false);
  builder.Add("bob", "bornIn", "rome", true);
  builder.Add("carol", "bornIn", "oslo", true);
  builder.Add("carol", "knows", "alice", true);
  builder.Add("carol", "knows", "bob", false);
  return *builder.Build();
}

TEST(VocabularyTest, InternIsIdempotent) {
  Vocabulary vocab;
  const uint32_t a = vocab.Intern("alice");
  const uint32_t b = vocab.Intern("bob");
  EXPECT_NE(a, b);
  EXPECT_EQ(vocab.Intern("alice"), a);
  EXPECT_EQ(vocab.size(), 2u);
  EXPECT_EQ(vocab.TermOf(a), "alice");
}

TEST(VocabularyTest, FindReportsMissingTerms) {
  Vocabulary vocab;
  vocab.Intern("x");
  EXPECT_TRUE(vocab.Find("x").ok());
  EXPECT_FALSE(vocab.Find("y").ok());
  EXPECT_EQ(vocab.Find("y").status().code(), StatusCode::kNotFound);
}

TEST(KnowledgeGraphTest, CountsAndClusters) {
  const KnowledgeGraph kg = MakeSmallKg();
  EXPECT_EQ(kg.num_triples(), 6u);
  EXPECT_EQ(kg.num_clusters(), 3u);
  // Cluster sizes sum to the triple count.
  uint64_t total = 0;
  for (uint64_t c = 0; c < kg.num_clusters(); ++c) {
    total += kg.cluster_size(c);
  }
  EXPECT_EQ(total, kg.num_triples());
}

TEST(KnowledgeGraphTest, ClustersGroupBySubject) {
  const KnowledgeGraph kg = MakeSmallKg();
  for (uint64_t c = 0; c < kg.num_clusters(); ++c) {
    const uint32_t subject = kg.cluster_subject(c);
    for (uint64_t o = 0; o < kg.cluster_size(c); ++o) {
      EXPECT_EQ(kg.triple(c, o).subject, subject);
    }
  }
}

TEST(KnowledgeGraphTest, TrueAccuracyIsLabelFraction) {
  const KnowledgeGraph kg = MakeSmallKg();
  EXPECT_DOUBLE_EQ(kg.TrueAccuracy(), 4.0 / 6.0);
}

TEST(KnowledgeGraphTest, TripleAtCoversWholeRange) {
  const KnowledgeGraph kg = MakeSmallKg();
  uint64_t index = 0;
  for (uint64_t c = 0; c < kg.num_clusters(); ++c) {
    for (uint64_t o = 0; o < kg.cluster_size(c); ++o, ++index) {
      const TripleRef ref = kg.TripleAt(index);
      EXPECT_EQ(ref.cluster, c) << index;
      EXPECT_EQ(ref.offset, o) << index;
    }
  }
  EXPECT_EQ(index, kg.num_triples());
}

TEST(KnowledgeGraphTest, LabelsFollowTriplesThroughSorting) {
  // The builder sorts by (s, p, o); labels must stay attached.
  KnowledgeGraphBuilder builder;
  builder.Add("z", "p", "o1", false);
  builder.Add("a", "p", "o1", true);
  const KnowledgeGraph kg = *builder.Build();
  // "a" sorts into cluster order; its label is true.
  const auto& vocab = kg.vocabulary();
  for (uint64_t c = 0; c < kg.num_clusters(); ++c) {
    const std::string& subject = vocab.TermOf(kg.cluster_subject(c));
    if (subject == "a") EXPECT_TRUE(kg.label(c, 0));
    if (subject == "z") EXPECT_FALSE(kg.label(c, 0));
  }
}

TEST(KnowledgeGraphBuilderTest, RejectsEmptyBuild) {
  KnowledgeGraphBuilder builder;
  EXPECT_FALSE(builder.Build().ok());
}

TEST(KnowledgeGraphBuilderTest, RejectsDuplicateTriples) {
  KnowledgeGraphBuilder builder;
  builder.Add("s", "p", "o", true);
  builder.Add("s", "p", "o", false);
  const auto result = builder.Build();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(KnowledgeGraphBuilderTest, BuilderIsReusableAfterBuild) {
  KnowledgeGraphBuilder builder;
  builder.Add("s", "p", "o", true);
  ASSERT_TRUE(builder.Build().ok());
  EXPECT_EQ(builder.size(), 0u);
  builder.Add("s2", "p2", "o2", true);
  const auto second = builder.Build();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().num_triples(), 1u);
}

TEST(KnowledgeGraphBuilderTest, SingleClusterGraph) {
  KnowledgeGraphBuilder builder;
  for (int i = 0; i < 10; ++i) {
    builder.Add("s", "p", "o" + std::to_string(i), i % 2 == 0);
  }
  const KnowledgeGraph kg = *builder.Build();
  EXPECT_EQ(kg.num_clusters(), 1u);
  EXPECT_EQ(kg.cluster_size(0), 10u);
  EXPECT_DOUBLE_EQ(kg.TrueAccuracy(), 0.5);
}

TEST(KnowledgeGraphTest, AvgClusterSize) {
  const KnowledgeGraph kg = MakeSmallKg();
  EXPECT_DOUBLE_EQ(kg.AvgClusterSize(), 2.0);
}

}  // namespace
}  // namespace kgacc
