#include "kgacc/kg/profiles.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

TEST(ProfilesTest, Table1FactCounts) {
  EXPECT_EQ(YagoProfile().num_facts, 1386u);
  EXPECT_EQ(NellProfile().num_facts, 1860u);
  EXPECT_EQ(DbpediaProfile().num_facts, 9344u);
  EXPECT_EQ(FactbenchProfile().num_facts, 2800u);
  EXPECT_EQ(Syn100MProfile(0.9).num_facts, 101415011u);
}

TEST(ProfilesTest, Table1ClusterCounts) {
  EXPECT_EQ(YagoProfile().num_clusters, 822u);
  EXPECT_EQ(NellProfile().num_clusters, 817u);
  EXPECT_EQ(DbpediaProfile().num_clusters, 2936u);
  EXPECT_EQ(FactbenchProfile().num_clusters, 1157u);
  EXPECT_EQ(Syn100MProfile(0.5).num_clusters, 5000000u);
}

TEST(ProfilesTest, Table1AvgClusterSizes) {
  EXPECT_NEAR(YagoProfile().AvgClusterSize(), 1.69, 0.01);
  EXPECT_NEAR(NellProfile().AvgClusterSize(), 2.28, 0.01);
  EXPECT_NEAR(DbpediaProfile().AvgClusterSize(), 3.18, 0.01);
  EXPECT_NEAR(FactbenchProfile().AvgClusterSize(), 2.42, 0.01);
  EXPECT_NEAR(Syn100MProfile(0.9).AvgClusterSize(), 20.28, 0.01);
}

TEST(ProfilesTest, Table1Accuracies) {
  EXPECT_DOUBLE_EQ(YagoProfile().accuracy, 0.99);
  EXPECT_DOUBLE_EQ(NellProfile().accuracy, 0.91);
  EXPECT_DOUBLE_EQ(DbpediaProfile().accuracy, 0.85);
  EXPECT_DOUBLE_EQ(FactbenchProfile().accuracy, 0.54);
  EXPECT_DOUBLE_EQ(Syn100MProfile(0.1).accuracy, 0.1);
}

TEST(ProfilesTest, RecommendedSecondStageSizes) {
  // Gao et al.: m = 3 for small-cluster KGs, m = 5 for SYN 100M.
  EXPECT_EQ(YagoProfile().twcs_second_stage, 3);
  EXPECT_EQ(FactbenchProfile().twcs_second_stage, 3);
  EXPECT_EQ(Syn100MProfile(0.9).twcs_second_stage, 5);
}

TEST(ProfilesTest, SmallProfilesInPaperOrder) {
  const auto profiles = SmallProfiles();
  ASSERT_EQ(profiles.size(), 4u);
  EXPECT_EQ(profiles[0].name, "YAGO");
  EXPECT_EQ(profiles[1].name, "NELL");
  EXPECT_EQ(profiles[2].name, "DBPEDIA");
  EXPECT_EQ(profiles[3].name, "FACTBENCH");
}

TEST(ProfilesTest, MakeKgMatchesProfileExactly) {
  for (const DatasetProfile& profile : SmallProfiles()) {
    const auto kg = MakeKg(profile, /*seed=*/11);
    ASSERT_TRUE(kg.ok()) << profile.name;
    EXPECT_EQ(kg->num_triples(), profile.num_facts) << profile.name;
    EXPECT_EQ(kg->num_clusters(), profile.num_clusters) << profile.name;
    // The realized accuracy should be close to the nominal mu; the small
    // populations carry binomial noise of ~1/sqrt(N).
    EXPECT_NEAR(kg->TrueAccuracy(), profile.accuracy, 0.03) << profile.name;
  }
}

TEST(ProfilesTest, FactbenchUsesBalancedLabels) {
  EXPECT_EQ(FactbenchProfile().label_model, LabelModel::kBalanced);
}

TEST(ProfilesTest, SynUsesIidLabels) {
  EXPECT_EQ(Syn100MProfile(0.9).label_model, LabelModel::kIid);
}

}  // namespace
}  // namespace kgacc
