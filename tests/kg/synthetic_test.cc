#include "kgacc/kg/synthetic.h"

#include <cmath>

#include <gtest/gtest.h>

namespace kgacc {
namespace {

SyntheticKgConfig BaseConfig() {
  SyntheticKgConfig cfg;
  cfg.num_clusters = 1000;
  cfg.mean_cluster_size = 3.0;
  cfg.accuracy = 0.8;
  cfg.seed = 42;
  return cfg;
}

TEST(SyntheticKgTest, ValidatesConfig) {
  SyntheticKgConfig cfg = BaseConfig();
  cfg.num_clusters = 0;
  EXPECT_FALSE(SyntheticKg::Create(cfg).ok());

  cfg = BaseConfig();
  cfg.mean_cluster_size = 0.5;
  EXPECT_FALSE(SyntheticKg::Create(cfg).ok());

  cfg = BaseConfig();
  cfg.accuracy = 1.5;
  EXPECT_FALSE(SyntheticKg::Create(cfg).ok());

  cfg = BaseConfig();
  cfg.label_model = LabelModel::kBetaMixture;
  cfg.intra_cluster_rho = 0.0;  // Must be in (0,1) for the mixture.
  EXPECT_FALSE(SyntheticKg::Create(cfg).ok());

  cfg = BaseConfig();
  cfg.exact_total_triples = 10;  // Fewer than clusters.
  EXPECT_FALSE(SyntheticKg::Create(cfg).ok());
}

TEST(SyntheticKgTest, DeterministicForFixedSeed) {
  const auto a = *SyntheticKg::Create(BaseConfig());
  const auto b = *SyntheticKg::Create(BaseConfig());
  ASSERT_EQ(a.num_triples(), b.num_triples());
  ASSERT_EQ(a.num_clusters(), b.num_clusters());
  for (uint64_t c = 0; c < 100; ++c) {
    ASSERT_EQ(a.cluster_size(c), b.cluster_size(c));
    for (uint64_t o = 0; o < a.cluster_size(c); ++o) {
      ASSERT_EQ(a.label(c, o), b.label(c, o));
    }
  }
}

TEST(SyntheticKgTest, DifferentSeedsGiveDifferentLabels) {
  SyntheticKgConfig cfg = BaseConfig();
  const auto a = *SyntheticKg::Create(cfg);
  cfg.seed = 43;
  const auto b = *SyntheticKg::Create(cfg);
  int differing = 0;
  for (uint64_t c = 0; c < 200; ++c) {
    const uint64_t m = std::min(a.cluster_size(c), b.cluster_size(c));
    for (uint64_t o = 0; o < m; ++o) {
      differing += (a.label(c, o) != b.label(c, o)) ? 1 : 0;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(SyntheticKgTest, GeometricSizesHitTargetMean) {
  SyntheticKgConfig cfg = BaseConfig();
  cfg.num_clusters = 50000;
  cfg.mean_cluster_size = 4.5;
  const auto kg = *SyntheticKg::Create(cfg);
  const double mean = static_cast<double>(kg.num_triples()) /
                      static_cast<double>(kg.num_clusters());
  EXPECT_NEAR(mean, 4.5, 0.1);
  for (uint64_t c = 0; c < kg.num_clusters(); c += 97) {
    EXPECT_GE(kg.cluster_size(c), 1u);
  }
}

TEST(SyntheticKgTest, FixedSizesAreConstant) {
  SyntheticKgConfig cfg = BaseConfig();
  cfg.size_model = ClusterSizeModel::kFixed;
  cfg.mean_cluster_size = 5.0;
  const auto kg = *SyntheticKg::Create(cfg);
  for (uint64_t c = 0; c < kg.num_clusters(); ++c) {
    EXPECT_EQ(kg.cluster_size(c), 5u);
  }
  EXPECT_EQ(kg.num_triples(), 5000u);
}

TEST(SyntheticKgTest, ExactTotalIsRespected) {
  SyntheticKgConfig cfg = BaseConfig();
  cfg.exact_total_triples = 2800;
  const auto kg = *SyntheticKg::Create(cfg);
  EXPECT_EQ(kg.num_triples(), 2800u);
  // All clusters remain non-empty after the fix-up.
  for (uint64_t c = 0; c < kg.num_clusters(); ++c) {
    EXPECT_GE(kg.cluster_size(c), 1u);
  }
}

TEST(SyntheticKgTest, IidAccuracyNearTarget) {
  SyntheticKgConfig cfg = BaseConfig();
  cfg.num_clusters = 30000;
  const auto kg = *SyntheticKg::Create(cfg);
  EXPECT_NEAR(kg.TrueAccuracy(), 0.8, 0.01);
}

TEST(SyntheticKgTest, AccuracyZeroAndOneAreExact) {
  SyntheticKgConfig cfg = BaseConfig();
  cfg.accuracy = 1.0;
  const auto all_correct = *SyntheticKg::Create(cfg);
  EXPECT_DOUBLE_EQ(all_correct.TrueAccuracy(), 1.0);
  cfg.accuracy = 0.0;
  const auto all_wrong = *SyntheticKg::Create(cfg);
  EXPECT_DOUBLE_EQ(all_wrong.TrueAccuracy(), 0.0);
}

TEST(SyntheticKgTest, BalancedModelMatchesTargetTightly) {
  SyntheticKgConfig cfg = BaseConfig();
  cfg.label_model = LabelModel::kBalanced;
  cfg.accuracy = 0.54;
  cfg.num_clusters = 5000;
  const auto kg = *SyntheticKg::Create(cfg);
  // Stochastic rounding at cluster level keeps the global accuracy within a
  // small tolerance of the target.
  EXPECT_NEAR(kg.TrueAccuracy(), 0.54, 0.02);
}

TEST(SyntheticKgTest, BalancedClusterCompositionIsBalanced) {
  SyntheticKgConfig cfg = BaseConfig();
  cfg.label_model = LabelModel::kBalanced;
  cfg.accuracy = 0.5;
  cfg.size_model = ClusterSizeModel::kFixed;
  cfg.mean_cluster_size = 4.0;
  const auto kg = *SyntheticKg::Create(cfg);
  for (uint64_t c = 0; c < 200; ++c) {
    int correct = 0;
    for (uint64_t o = 0; o < kg.cluster_size(c); ++o) {
      correct += kg.label(c, o) ? 1 : 0;
    }
    EXPECT_EQ(correct, 2) << "cluster " << c;  // Exactly mu * M = 2.
  }
}

TEST(SyntheticKgTest, BetaMixtureClusterAccuraciesSpread) {
  SyntheticKgConfig cfg = BaseConfig();
  cfg.label_model = LabelModel::kBetaMixture;
  cfg.intra_cluster_rho = 0.3;
  cfg.accuracy = 0.85;
  const auto kg = *SyntheticKg::Create(cfg);
  // Cluster accuracies should vary (unlike the iid model where they are
  // all exactly mu) and average near mu.
  double sum = 0.0;
  double min_p = 1.0, max_p = 0.0;
  const int n = 2000;
  for (int c = 0; c < n; ++c) {
    const double p = kg.ClusterAccuracy(c % kg.num_clusters());
    sum += p;
    min_p = std::min(min_p, p);
    max_p = std::max(max_p, p);
  }
  EXPECT_NEAR(sum / n, 0.85, 0.02);
  EXPECT_LT(min_p, 0.6);   // Genuine dispersion.
  EXPECT_GT(max_p, 0.97);
}

TEST(SyntheticKgTest, ZipfSizesMatchTargetMean) {
  SyntheticKgConfig cfg = BaseConfig();
  cfg.size_model = ClusterSizeModel::kZipf;
  cfg.num_clusters = 50000;
  cfg.mean_cluster_size = 5.0;
  const auto kg = *SyntheticKg::Create(cfg);
  const double mean = static_cast<double>(kg.num_triples()) /
                      static_cast<double>(kg.num_clusters());
  EXPECT_NEAR(mean, 5.0, 0.4);
}

TEST(SyntheticKgTest, ZipfSizesHaveHeavyTail) {
  SyntheticKgConfig cfg = BaseConfig();
  cfg.size_model = ClusterSizeModel::kZipf;
  cfg.num_clusters = 50000;
  cfg.mean_cluster_size = 5.0;
  const auto kg = *SyntheticKg::Create(cfg);
  uint64_t max_size = 0;
  uint64_t singletons = 0;
  for (uint64_t c = 0; c < kg.num_clusters(); ++c) {
    max_size = std::max(max_size, kg.cluster_size(c));
    singletons += kg.cluster_size(c) == 1 ? 1 : 0;
  }
  // Hubs far beyond the mean coexist with a majority of singletons.
  EXPECT_GT(max_size, 100u);
  EXPECT_GT(singletons, kg.num_clusters() / 2);
}

TEST(SyntheticKgTest, ZipfRejectsUnreachableMean) {
  SyntheticKgConfig cfg = BaseConfig();
  cfg.size_model = ClusterSizeModel::kZipf;
  cfg.zipf_max_size = 4;
  cfg.mean_cluster_size = 100.0;  // Impossible with sizes capped at 4.
  EXPECT_FALSE(SyntheticKg::Create(cfg).ok());
  cfg.zipf_max_size = 1;
  cfg.mean_cluster_size = 1.0;
  EXPECT_FALSE(SyntheticKg::Create(cfg).ok());
}

TEST(SyntheticKgTest, TripleAtRoundTripsPrefixSums) {
  const auto kg = *SyntheticKg::Create(BaseConfig());
  uint64_t index = 0;
  for (uint64_t c = 0; c < kg.num_clusters(); ++c) {
    for (uint64_t o = 0; o < kg.cluster_size(c); ++o, ++index) {
      const TripleRef ref = kg.TripleAt(index);
      ASSERT_EQ(ref.cluster, c);
      ASSERT_EQ(ref.offset, o);
    }
  }
  EXPECT_EQ(index, kg.num_triples());
}

TEST(SyntheticKgTest, LargePopulationIsMemoryLazy) {
  // 100M-triple population must construct quickly with O(clusters) memory;
  // labels are computed on demand.
  SyntheticKgConfig cfg;
  cfg.num_clusters = 5000000;
  cfg.mean_cluster_size = 20.283;
  cfg.accuracy = 0.9;
  cfg.seed = 7;
  cfg.exact_total_triples = 101415011;
  const auto kg = *SyntheticKg::Create(cfg);
  EXPECT_EQ(kg.num_triples(), 101415011u);
  EXPECT_EQ(kg.num_clusters(), 5000000u);
  // Spot-check labels across the population.
  int correct = 0;
  const int probes = 20000;
  for (int i = 0; i < probes; ++i) {
    const uint64_t idx =
        (static_cast<uint64_t>(i) * 2654435761u) % kg.num_triples();
    const TripleRef ref = kg.TripleAt(idx);
    correct += kg.label(ref.cluster, ref.offset) ? 1 : 0;
  }
  EXPECT_NEAR(correct / static_cast<double>(probes), 0.9, 0.02);
}

}  // namespace
}  // namespace kgacc
