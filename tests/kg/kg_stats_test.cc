#include "kgacc/kg/kg_stats.h"

#include "kgacc/kg/profiles.h"
#include "kgacc/kg/synthetic.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

SyntheticKg MakeKg(LabelModel model, double rho, double mu = 0.8,
                   ClusterSizeModel sizes = ClusterSizeModel::kGeometric) {
  SyntheticKgConfig cfg;
  cfg.num_clusters = 3000;
  cfg.mean_cluster_size = 4.0;
  cfg.size_model = sizes;
  cfg.accuracy = mu;
  cfg.label_model = model;
  cfg.intra_cluster_rho = rho;
  cfg.seed = 31;
  return *SyntheticKg::Create(cfg);
}

TEST(KgStatisticsTest, BasicCountsMatchPopulation) {
  const auto kg = MakeKg(LabelModel::kIid, 0.0);
  const auto stats = *ComputeKgStatistics(kg);
  EXPECT_EQ(stats.num_triples, kg.num_triples());
  EXPECT_EQ(stats.num_clusters, kg.num_clusters());
  EXPECT_NEAR(stats.avg_cluster_size, 4.0, 0.2);
  EXPECT_NEAR(stats.accuracy, kg.TrueAccuracy(), 1e-12);
  EXPECT_GE(stats.max_cluster_size, 4u);
}

TEST(KgStatisticsTest, FixedSizesHaveZeroSpreadAndGini) {
  const auto kg = MakeKg(LabelModel::kIid, 0.0, 0.8, ClusterSizeModel::kFixed);
  const auto stats = *ComputeKgStatistics(kg);
  EXPECT_DOUBLE_EQ(stats.cluster_size_stddev, 0.0);
  EXPECT_NEAR(stats.cluster_size_gini, 0.0, 1e-9);
}

TEST(KgStatisticsTest, ZipfSizesAreHeavyTailed) {
  const auto geometric = MakeKg(LabelModel::kIid, 0.0);
  const auto zipf =
      MakeKg(LabelModel::kIid, 0.0, 0.8, ClusterSizeModel::kZipf);
  const auto g_stats = *ComputeKgStatistics(geometric);
  const auto z_stats = *ComputeKgStatistics(zipf);
  EXPECT_GT(z_stats.cluster_size_gini, g_stats.cluster_size_gini);
  EXPECT_GT(z_stats.max_cluster_size, g_stats.max_cluster_size);
}

TEST(KgStatisticsTest, IidLabelsHaveNearZeroIcc) {
  const auto kg = MakeKg(LabelModel::kIid, 0.0);
  const auto stats = *ComputeKgStatistics(kg);
  EXPECT_NEAR(stats.intra_cluster_correlation, 0.0, 0.03);
  EXPECT_NEAR(stats.predicted_design_effect, 1.0, 0.1);
}

TEST(KgStatisticsTest, BetaMixtureIccTracksRho) {
  for (const double rho : {0.15, 0.4}) {
    const auto kg = MakeKg(LabelModel::kBetaMixture, rho);
    const auto stats = *ComputeKgStatistics(kg);
    EXPECT_NEAR(stats.intra_cluster_correlation, rho, 0.08) << rho;
    EXPECT_GT(stats.predicted_design_effect, 1.0) << rho;
  }
}

TEST(KgStatisticsTest, BalancedLabelsHaveNegativeIcc) {
  const auto kg = MakeKg(LabelModel::kBalanced, 0.0, 0.54);
  const auto stats = *ComputeKgStatistics(kg);
  EXPECT_LT(stats.intra_cluster_correlation, -0.05);
  EXPECT_LT(stats.predicted_design_effect, 1.0);
}

TEST(KgStatisticsTest, PaperProfilesExposeTheExpectedRegimes) {
  // The design-effect regimes behind Table 3: NELL/DBPEDIA > 1, FACTBENCH
  // < 1.
  const auto nell = *ComputeKgStatistics(*MakeKg(NellProfile(), 5));
  const auto factbench = *ComputeKgStatistics(*MakeKg(FactbenchProfile(), 5));
  EXPECT_GT(nell.predicted_design_effect, 1.0);
  EXPECT_LT(factbench.predicted_design_effect, 1.0);
}

TEST(KgStatisticsTest, RejectsBadInputs) {
  const auto kg = MakeKg(LabelModel::kIid, 0.0);
  EXPECT_FALSE(ComputeKgStatistics(kg, 0).ok());
}

}  // namespace
}  // namespace kgacc
