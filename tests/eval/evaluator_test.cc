#include "kgacc/eval/evaluator.h"

#include "kgacc/kg/profiles.h"
#include "kgacc/kg/synthetic.h"
#include "kgacc/sampling/cluster.h"
#include "kgacc/sampling/srs.h"
#include "kgacc/sampling/stratified.h"
#include "kgacc/sampling/systematic.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

SyntheticKg MakeKg(double accuracy, uint64_t clusters = 2000,
                   uint64_t seed = 77) {
  SyntheticKgConfig cfg;
  cfg.num_clusters = clusters;
  cfg.mean_cluster_size = 3.0;
  cfg.accuracy = accuracy;
  cfg.seed = seed;
  return *SyntheticKg::Create(cfg);
}

TEST(IntervalMethodNameTest, AllNamesStable) {
  EXPECT_STREQ(IntervalMethodName(IntervalMethod::kWald), "Wald");
  EXPECT_STREQ(IntervalMethodName(IntervalMethod::kWilson), "Wilson");
  EXPECT_STREQ(IntervalMethodName(IntervalMethod::kAgrestiCoull),
               "Agresti-Coull");
  EXPECT_STREQ(IntervalMethodName(IntervalMethod::kClopperPearson),
               "Clopper-Pearson");
  EXPECT_STREQ(IntervalMethodName(IntervalMethod::kEqualTailed), "ET");
  EXPECT_STREQ(IntervalMethodName(IntervalMethod::kHpd), "HPD");
  EXPECT_STREQ(IntervalMethodName(IntervalMethod::kAhpd), "aHPD");
}

TEST(RunEvaluationTest, ConvergesAndMeetsMoeBudget) {
  const auto kg = MakeKg(0.85);
  SrsSampler sampler(kg, SrsConfig{});
  OracleAnnotator annotator;
  EvaluationConfig config;
  const auto result = *RunEvaluation(sampler, annotator, config, 1);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.interval.Moe(), config.moe_threshold);
  EXPECT_GE(result.annotated_triples, config.min_sample_triples);
  EXPECT_GT(result.iterations, 0);
  EXPECT_NEAR(result.mu, 0.85, 0.15);
}

TEST(RunEvaluationTest, DeterministicForFixedSeed) {
  const auto kg = MakeKg(0.85);
  SrsSampler sampler(kg, SrsConfig{});
  OracleAnnotator annotator;
  EvaluationConfig config;
  const auto a = *RunEvaluation(sampler, annotator, config, 42);
  const auto b = *RunEvaluation(sampler, annotator, config, 42);
  EXPECT_EQ(a.annotated_triples, b.annotated_triples);
  EXPECT_DOUBLE_EQ(a.mu, b.mu);
  EXPECT_DOUBLE_EQ(a.interval.lower, b.interval.lower);
  EXPECT_DOUBLE_EQ(a.cost_seconds, b.cost_seconds);
}

TEST(RunEvaluationTest, DifferentSeedsTakeDifferentPaths) {
  const auto kg = MakeKg(0.85);
  SrsSampler sampler(kg, SrsConfig{});
  OracleAnnotator annotator;
  EvaluationConfig config;
  const auto a = *RunEvaluation(sampler, annotator, config, 1);
  const auto b = *RunEvaluation(sampler, annotator, config, 2);
  EXPECT_NE(a.mu, b.mu);  // Astronomically unlikely to tie exactly.
}

TEST(RunEvaluationTest, MinSampleFloorIsRespected) {
  // Even a tame population must annotate >= min_sample_triples.
  const auto kg = MakeKg(1.0);
  SrsSampler sampler(kg, SrsConfig{});
  OracleAnnotator annotator;
  EvaluationConfig config;
  config.min_sample_triples = 50;
  const auto result = *RunEvaluation(sampler, annotator, config, 3);
  EXPECT_GE(result.annotated_triples, 50u);
}

TEST(RunEvaluationTest, WaldZeroWidthHaltsAtMinSample) {
  // Example 1: all-correct population + Wald -> zero-width interval at
  // exactly the minimum sample size.
  const auto kg = MakeKg(1.0);
  SrsSampler sampler(kg, SrsConfig{});
  OracleAnnotator annotator;
  EvaluationConfig config;
  config.method = IntervalMethod::kWald;
  const auto result = *RunEvaluation(sampler, annotator, config, 4);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.annotated_triples, 30u);
  EXPECT_DOUBLE_EQ(result.interval.Width(), 0.0);
}

TEST(RunEvaluationTest, MaxTriplesCapReportsNonConvergence) {
  const auto kg = MakeKg(0.5);
  SrsSampler sampler(kg, SrsConfig{});
  OracleAnnotator annotator;
  EvaluationConfig config;
  config.moe_threshold = 0.001;  // Needs ~ 1M samples; cap fires first.
  config.max_triples = 200;
  const auto result = *RunEvaluation(sampler, annotator, config, 5);
  EXPECT_FALSE(result.converged);
  EXPECT_LE(result.annotated_triples, 200u + 10u);
}

TEST(RunEvaluationTest, TraceRecordsEveryBatch) {
  const auto kg = MakeKg(0.85);
  SrsSampler sampler(kg, SrsConfig{.batch_size = 10});
  OracleAnnotator annotator;
  EvaluationConfig config;
  config.record_trace = true;
  const auto result = *RunEvaluation(sampler, annotator, config, 6);
  ASSERT_EQ(result.trace.size(), static_cast<size_t>(result.iterations));
  // n grows by the batch size; MoE is eventually within budget.
  for (size_t i = 1; i < result.trace.size(); ++i) {
    EXPECT_EQ(result.trace[i].n, result.trace[i - 1].n + 10);
  }
  EXPECT_LE(result.trace.back().moe, config.moe_threshold);
}

TEST(RunEvaluationTest, CostAccountsDistinctEntitiesAndTriples) {
  const auto kg = MakeKg(0.85);
  TwcsSampler sampler(kg, TwcsConfig{});
  OracleAnnotator annotator;
  EvaluationConfig config;
  const auto result = *RunEvaluation(sampler, annotator, config, 7);
  const double expected = result.distinct_entities * 45.0 +
                          result.distinct_triples * 25.0;
  EXPECT_DOUBLE_EQ(result.cost_seconds, expected);
  EXPECT_DOUBLE_EQ(result.cost_hours, expected / 3600.0);
  // TWCS shares entities across second-stage triples.
  EXPECT_LT(result.distinct_entities, result.distinct_triples);
}

TEST(RunEvaluationTest, TwcsReportsDesignEffect) {
  SyntheticKgConfig cfg;
  cfg.num_clusters = 2000;
  cfg.mean_cluster_size = 3.0;
  cfg.accuracy = 0.85;
  cfg.label_model = LabelModel::kBetaMixture;
  cfg.intra_cluster_rho = 0.3;
  cfg.seed = 11;
  const auto kg = *SyntheticKg::Create(cfg);
  TwcsSampler sampler(kg, TwcsConfig{});
  OracleAnnotator annotator;
  EvaluationConfig config;
  config.method = IntervalMethod::kWilson;
  const auto result = *RunEvaluation(sampler, annotator, config, 8);
  EXPECT_NE(result.deff, 1.0);  // Kish adjustment was engaged.
}

TEST(RunEvaluationTest, AllMethodsConvergeOnSkewedPopulation) {
  const auto kg = MakeKg(0.9);
  OracleAnnotator annotator;
  for (const IntervalMethod method :
       {IntervalMethod::kWald, IntervalMethod::kWilson,
        IntervalMethod::kAgrestiCoull, IntervalMethod::kClopperPearson,
        IntervalMethod::kEqualTailed, IntervalMethod::kHpd,
        IntervalMethod::kAhpd}) {
    SrsSampler sampler(kg, SrsConfig{});
    EvaluationConfig config;
    config.method = method;
    const auto result = RunEvaluation(sampler, annotator, config, 9);
    ASSERT_TRUE(result.ok()) << IntervalMethodName(method);
    EXPECT_TRUE(result->converged) << IntervalMethodName(method);
    EXPECT_LE(result->interval.Moe(), 0.05) << IntervalMethodName(method);
  }
}

TEST(RunEvaluationTest, AhpdReportsWinningPrior) {
  const auto kg = MakeKg(0.99);
  SrsSampler sampler(kg, SrsConfig{});
  OracleAnnotator annotator;
  EvaluationConfig config;  // aHPD with the Kerman/Jeffreys/Uniform trio.
  const auto result = *RunEvaluation(sampler, annotator, config, 10);
  EXPECT_LT(result.winning_prior, config.priors.size());
}

TEST(RunEvaluationTest, RejectsInvalidConfig) {
  const auto kg = MakeKg(0.85);
  SrsSampler sampler(kg, SrsConfig{});
  OracleAnnotator annotator;
  EvaluationConfig bad_moe;
  bad_moe.moe_threshold = 0.0;
  EXPECT_FALSE(RunEvaluation(sampler, annotator, bad_moe, 1).ok());
  EvaluationConfig bad_alpha;
  bad_alpha.alpha = 1.5;
  EXPECT_FALSE(RunEvaluation(sampler, annotator, bad_alpha, 1).ok());
}

TEST(RunEvaluationTest, NoisyAnnotationBiasesEstimateAsExpected) {
  // A 10%-error annotator on a mu=0.9 population observes accuracy
  // 0.9*0.9 + 0.1*0.1 = 0.82.
  const auto kg = MakeKg(0.9, 5000);
  SrsSampler sampler(kg, SrsConfig{});
  NoisyAnnotator annotator(0.1);
  EvaluationConfig config;
  config.moe_threshold = 0.02;  // Larger sample for a tight check.
  const auto result = *RunEvaluation(sampler, annotator, config, 11);
  EXPECT_NEAR(result.mu, 0.82, 0.05);
}

TEST(RunEvaluationTest, BudgetExhaustionStopsEarly) {
  const auto kg = MakeKg(0.5);
  SrsSampler sampler(kg, SrsConfig{});
  OracleAnnotator annotator;
  EvaluationConfig config;
  config.moe_threshold = 0.001;        // Unreachable quickly...
  config.max_cost_seconds = 3600.0;    // ...within a one-hour budget.
  const auto result = *RunEvaluation(sampler, annotator, config, 21);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.stop_reason, StopReason::kBudgetExhausted);
  // The budget allows ~ 3600 / 70 = 51 fresh triples plus one batch of
  // overshoot.
  EXPECT_LT(result.cost_seconds, 3600.0 + 11 * 70.0);
}

TEST(RunEvaluationTest, StopReasonsAreConsistent) {
  const auto kg = MakeKg(0.9);
  OracleAnnotator annotator;

  SrsSampler converge(kg, SrsConfig{});
  EvaluationConfig ok_config;
  const auto converged = *RunEvaluation(converge, annotator, ok_config, 22);
  EXPECT_EQ(converged.stop_reason, StopReason::kConverged);
  EXPECT_TRUE(converged.converged);

  SrsSampler capped(kg, SrsConfig{});
  EvaluationConfig cap_config;
  cap_config.moe_threshold = 1e-5;
  cap_config.max_triples = 100;
  const auto cap = *RunEvaluation(capped, annotator, cap_config, 22);
  EXPECT_EQ(cap.stop_reason, StopReason::kTripleCapReached);

  // Exhaust a tiny population under WOR with an unreachable MoE.
  SyntheticKgConfig tiny_cfg;
  tiny_cfg.num_clusters = 20;
  tiny_cfg.mean_cluster_size = 2.0;
  tiny_cfg.accuracy = 0.5;
  tiny_cfg.seed = 3;
  const auto tiny = *SyntheticKg::Create(tiny_cfg);
  SrsSampler wor(tiny, SrsConfig{.batch_size = 10,
                                 .without_replacement = true});
  EvaluationConfig wor_config;
  wor_config.moe_threshold = 1e-6;
  const auto exhausted = *RunEvaluation(wor, annotator, wor_config, 23);
  EXPECT_EQ(exhausted.stop_reason, StopReason::kPopulationExhausted);
  EXPECT_EQ(exhausted.annotated_triples, tiny.num_triples());
}

TEST(StopReasonNameTest, AllNamesStable) {
  EXPECT_STREQ(StopReasonName(StopReason::kConverged), "converged");
  EXPECT_STREQ(StopReasonName(StopReason::kTripleCapReached), "triple-cap");
  EXPECT_STREQ(StopReasonName(StopReason::kBudgetExhausted),
               "budget-exhausted");
  EXPECT_STREQ(StopReasonName(StopReason::kPopulationExhausted),
               "population-exhausted");
}

TEST(RunEvaluationTest, FpcAcceleratesConvergenceOnTinyKgs) {
  // A 120-triple population at mu = 0.5: without FPC the audit needs ~380
  // triples (impossible WOR), with FPC the interval collapses as the
  // census nears and the run converges.
  SyntheticKgConfig cfg;
  cfg.num_clusters = 60;
  cfg.mean_cluster_size = 2.0;
  cfg.accuracy = 0.5;
  cfg.label_model = LabelModel::kBalanced;
  cfg.seed = 5;
  const auto kg = *SyntheticKg::Create(cfg);
  OracleAnnotator annotator;

  SrsSampler without(kg, SrsConfig{.without_replacement = true});
  EvaluationConfig plain;
  const auto uncorrected = *RunEvaluation(without, annotator, plain, 31);
  EXPECT_EQ(uncorrected.stop_reason, StopReason::kPopulationExhausted);
  EXPECT_FALSE(uncorrected.converged);

  SrsSampler with(kg, SrsConfig{.without_replacement = true});
  EvaluationConfig fpc;
  fpc.finite_population_correction = true;
  const auto corrected = *RunEvaluation(with, annotator, fpc, 31);
  EXPECT_TRUE(corrected.converged);
  EXPECT_LE(corrected.interval.Moe(), 0.05);
}

TEST(RunEvaluationTest, StratifiedSamplerRunsEndToEnd) {
  const auto kg = MakeKg(0.85);
  StratifiedSampler sampler(kg, StratifiedConfig{});
  OracleAnnotator annotator;
  EvaluationConfig config;
  const auto result = *RunEvaluation(sampler, annotator, config, 24);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.interval.Moe(), 0.05);
  EXPECT_NEAR(result.mu, 0.85, 0.12);
}

TEST(RunEvaluationTest, SystematicSamplerRunsEndToEnd) {
  const auto kg = MakeKg(0.85);
  SystematicSampler sampler(kg, SystematicConfig{});
  OracleAnnotator annotator;
  EvaluationConfig config;
  const auto result = *RunEvaluation(sampler, annotator, config, 25);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.interval.Moe(), 0.05);
  EXPECT_NEAR(result.mu, 0.85, 0.12);
}

TEST(BuildIntervalTest, MatchesDirectConstructors) {
  AccuracyEstimate est;
  est.mu = 0.8;
  est.n = 100;
  est.tau = 80;
  est.num_units = 100;
  est.variance = 0.8 * 0.2 / 100.0;

  EvaluationConfig config;
  config.method = IntervalMethod::kWilson;
  const auto wilson = *BuildInterval(config, EstimatorKind::kSrs, est);
  const auto direct = *WilsonInterval(0.8, 100, 0.05);
  EXPECT_DOUBLE_EQ(wilson.lower, direct.lower);
  EXPECT_DOUBLE_EQ(wilson.upper, direct.upper);
}

TEST(BuildIntervalTest, EtAndHpdRequirePriors) {
  AccuracyEstimate est;
  est.mu = 0.8;
  est.n = 100;
  est.tau = 80;
  est.num_units = 100;
  EvaluationConfig config;
  config.priors.clear();
  config.method = IntervalMethod::kEqualTailed;
  EXPECT_FALSE(BuildInterval(config, EstimatorKind::kSrs, est).ok());
  config.method = IntervalMethod::kHpd;
  EXPECT_FALSE(BuildInterval(config, EstimatorKind::kSrs, est).ok());
}

}  // namespace
}  // namespace kgacc
