#include "kgacc/eval/annotator.h"

#include <sstream>

#include "kgacc/kg/knowledge_graph.h"
#include "kgacc/kg/synthetic.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

SyntheticKg MakeKg() {
  SyntheticKgConfig cfg;
  cfg.num_clusters = 200;
  cfg.mean_cluster_size = 3.0;
  cfg.accuracy = 0.7;
  cfg.seed = 99;
  return *SyntheticKg::Create(cfg);
}

TEST(OracleAnnotatorTest, ReturnsGroundTruth) {
  const auto kg = MakeKg();
  OracleAnnotator oracle;
  Rng rng(1);
  for (uint64_t c = 0; c < 50; ++c) {
    for (uint64_t o = 0; o < kg.cluster_size(c); ++o) {
      EXPECT_EQ(oracle.Annotate(kg, TripleRef{c, o}, &rng), kg.label(c, o));
    }
  }
  EXPECT_EQ(oracle.JudgmentsPerTriple(), 1);
}

TEST(NoisyAnnotatorTest, ErrorRateIsRealized) {
  const auto kg = MakeKg();
  NoisyAnnotator noisy(0.2);
  Rng rng(2);
  int flips = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const TripleRef ref{static_cast<uint64_t>(i % kg.num_clusters()), 0};
    const bool truth = kg.label(ref.cluster, ref.offset);
    flips += (noisy.Annotate(kg, ref, &rng) != truth) ? 1 : 0;
  }
  EXPECT_NEAR(flips / static_cast<double>(n), 0.2, 0.01);
}

TEST(NoisyAnnotatorTest, ZeroErrorEqualsOracle) {
  const auto kg = MakeKg();
  NoisyAnnotator perfect(0.0);
  Rng rng(3);
  for (uint64_t c = 0; c < 50; ++c) {
    EXPECT_EQ(perfect.Annotate(kg, TripleRef{c, 0}, &rng), kg.label(c, 0));
  }
}

TEST(MajorityVoteAnnotatorTest, ReducesEffectiveErrorRate) {
  // Three annotators at 20% error: majority error = 3*0.04*0.8 + 0.008
  // = 0.104, well below the individual 0.2.
  const auto kg = MakeKg();
  MajorityVoteAnnotator panel(3, 0.2);
  Rng rng(4);
  int errors = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const TripleRef ref{static_cast<uint64_t>(i % kg.num_clusters()), 0};
    const bool truth = kg.label(ref.cluster, ref.offset);
    errors += (panel.Annotate(kg, ref, &rng) != truth) ? 1 : 0;
  }
  EXPECT_NEAR(errors / static_cast<double>(n), 0.104, 0.012);
  EXPECT_EQ(panel.JudgmentsPerTriple(), 3);
}

TEST(MajorityVoteAnnotatorTest, SingleAnnotatorDegeneratesToNoisy) {
  const auto kg = MakeKg();
  MajorityVoteAnnotator solo(1, 0.0);
  Rng rng(5);
  for (uint64_t c = 0; c < 30; ++c) {
    EXPECT_EQ(solo.Annotate(kg, TripleRef{c, 0}, &rng), kg.label(c, 0));
  }
}

KnowledgeGraph MakeNamedKg() {
  KnowledgeGraphBuilder builder;
  builder.Add("alice", "bornIn", "paris", true);
  builder.Add("bob", "bornIn", "rome", false);
  return *builder.Build();
}

TEST(InteractiveAnnotatorTest, ParsesAffirmativeAndNegativeAnswers) {
  const auto kg = MakeNamedKg();
  std::istringstream in("y\nNO\n1\nn\n");
  std::ostringstream out;
  InteractiveAnnotator annotator(&in, &out);
  Rng rng(1);
  EXPECT_TRUE(annotator.Annotate(kg, TripleRef{0, 0}, &rng));
  EXPECT_FALSE(annotator.Annotate(kg, TripleRef{0, 0}, &rng));
  EXPECT_TRUE(annotator.Annotate(kg, TripleRef{1, 0}, &rng));
  EXPECT_FALSE(annotator.Annotate(kg, TripleRef{1, 0}, &rng));
  EXPECT_EQ(annotator.prompts_issued(), 4);
}

TEST(InteractiveAnnotatorTest, ShowsTheActualTripleTerms) {
  const auto kg = MakeNamedKg();
  std::istringstream in("y\n");
  std::ostringstream out;
  InteractiveAnnotator annotator(&in, &out);
  Rng rng(1);
  annotator.Annotate(kg, TripleRef{0, 0}, &rng);
  const std::string prompt = out.str();
  EXPECT_NE(prompt.find("alice"), std::string::npos);
  EXPECT_NE(prompt.find("bornIn"), std::string::npos);
  EXPECT_NE(prompt.find("paris"), std::string::npos);
}

TEST(InteractiveAnnotatorTest, RepromptsOnGarbageInput) {
  const auto kg = MakeNamedKg();
  std::istringstream in("maybe\nperhaps\ny\n");
  std::ostringstream out;
  InteractiveAnnotator annotator(&in, &out);
  Rng rng(1);
  EXPECT_TRUE(annotator.Annotate(kg, TripleRef{0, 0}, &rng));
  EXPECT_NE(out.str().find("Please answer"), std::string::npos);
}

TEST(InteractiveAnnotatorTest, EndOfInputDefaultsToIncorrect) {
  const auto kg = MakeNamedKg();
  std::istringstream in("");
  std::ostringstream out;
  InteractiveAnnotator annotator(&in, &out);
  Rng rng(1);
  EXPECT_FALSE(annotator.Annotate(kg, TripleRef{0, 0}, &rng));
}

TEST(InteractiveAnnotatorTest, FallsBackToCoordinatesOnProceduralKg) {
  const auto kg = MakeKg();  // SyntheticKg: no vocabulary to show.
  std::istringstream in("y\n");
  std::ostringstream out;
  InteractiveAnnotator annotator(&in, &out);
  Rng rng(1);
  annotator.Annotate(kg, TripleRef{3, 0}, &rng);
  EXPECT_NE(out.str().find("cluster 3"), std::string::npos);
}

}  // namespace
}  // namespace kgacc
