#include "kgacc/eval/session.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "kgacc/kg/profiles.h"
#include "kgacc/kg/synthetic.h"
#include "kgacc/sampling/cluster.h"
#include "kgacc/sampling/srs.h"
#include "kgacc/sampling/stratified.h"
#include "kgacc/sampling/systematic.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

SyntheticKg MakeKg(double accuracy, uint64_t clusters = 2000,
                   uint64_t seed = 77) {
  SyntheticKgConfig cfg;
  cfg.num_clusters = clusters;
  cfg.mean_cluster_size = 3.0;
  cfg.accuracy = accuracy;
  cfg.seed = seed;
  return *SyntheticKg::Create(cfg);
}

void ExpectSameResult(const EvaluationResult& a, const EvaluationResult& b) {
  EXPECT_EQ(a.annotated_triples, b.annotated_triples);
  EXPECT_EQ(a.distinct_triples, b.distinct_triples);
  EXPECT_EQ(a.distinct_entities, b.distinct_entities);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.winning_prior, b.winning_prior);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.stop_reason, b.stop_reason);
  EXPECT_DOUBLE_EQ(a.mu, b.mu);
  EXPECT_DOUBLE_EQ(a.interval.lower, b.interval.lower);
  EXPECT_DOUBLE_EQ(a.interval.upper, b.interval.upper);
  EXPECT_DOUBLE_EQ(a.cost_seconds, b.cost_seconds);
  EXPECT_DOUBLE_EQ(a.cost_hours, b.cost_hours);
  EXPECT_DOUBLE_EQ(a.deff, b.deff);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].n, b.trace[i].n);
    EXPECT_DOUBLE_EQ(a.trace[i].moe, b.trace[i].moe);
    EXPECT_DOUBLE_EQ(a.trace[i].mu, b.trace[i].mu);
  }
}

TEST(EvaluationSessionTest, RunMatchesRunEvaluationBitForBit) {
  const auto kg = MakeKg(0.85);
  OracleAnnotator annotator;
  for (const IntervalMethod method :
       {IntervalMethod::kWald, IntervalMethod::kWilson,
        IntervalMethod::kClopperPearson, IntervalMethod::kAhpd}) {
    EvaluationConfig config;
    config.method = method;
    config.record_trace = true;

    SrsSampler loop_sampler(kg, SrsConfig{});
    const auto loop = *RunEvaluation(loop_sampler, annotator, config, 42);

    SrsSampler session_sampler(kg, SrsConfig{});
    EvaluationSession session(session_sampler, annotator, config, 42);
    const auto stepped = *session.Run();
    SCOPED_TRACE(IntervalMethodName(method));
    ExpectSameResult(loop, stepped);
  }
}

TEST(EvaluationSessionTest, EquivalenceAcrossSamplingDesigns) {
  const auto kg = MakeKg(0.9);
  OracleAnnotator annotator;
  EvaluationConfig config;

  {
    TwcsSampler a(kg, TwcsConfig{});
    TwcsSampler b(kg, TwcsConfig{});
    EvaluationSession session(b, annotator, config, 11);
    ExpectSameResult(*RunEvaluation(a, annotator, config, 11),
                     *session.Run());
  }
  {
    StratifiedSampler a(kg, StratifiedConfig{});
    StratifiedSampler b(kg, StratifiedConfig{});
    EvaluationSession session(b, annotator, config, 12);
    ExpectSameResult(*RunEvaluation(a, annotator, config, 12),
                     *session.Run());
  }
  {
    SystematicSampler a(kg, SystematicConfig{});
    SystematicSampler b(kg, SystematicConfig{});
    EvaluationSession session(b, annotator, config, 13);
    ExpectSameResult(*RunEvaluation(a, annotator, config, 13),
                     *session.Run());
  }
}

TEST(EvaluationSessionTest, RcsDesignRunsTheRatioEstimatorEndToEnd) {
  const auto kg = MakeKg(0.9);
  OracleAnnotator annotator;
  EvaluationConfig config;
  RcsSampler a(kg, ClusterConfig{});
  RcsSampler b(kg, ClusterConfig{});
  EvaluationSession session(b, annotator, config, 14);
  ExpectSameResult(*RunEvaluation(a, annotator, config, 14), *session.Run());
}

// The streaming accumulator the session estimates from must agree with the
// batch estimators replaying the accumulated sample — at every step, for
// every design (the batch functions stay the reference implementation).
TEST(EvaluationSessionTest, AccumulatorMatchesBatchEstimateAtEveryStep) {
  const auto kg = MakeKg(0.85, 500);
  OracleAnnotator annotator;
  EvaluationConfig config;
  config.moe_threshold = 0.02;  // Long enough run to stack many batches.
  config.max_triples = 4000;

  std::vector<std::unique_ptr<Sampler>> samplers;
  samplers.push_back(std::make_unique<SrsSampler>(kg, SrsConfig{}));
  samplers.push_back(std::make_unique<TwcsSampler>(kg, TwcsConfig{}));
  samplers.push_back(std::make_unique<RcsSampler>(kg, ClusterConfig{}));
  samplers.push_back(
      std::make_unique<StratifiedSampler>(kg, StratifiedConfig{}));
  for (const auto& sampler : samplers) {
    SCOPED_TRACE(sampler->name());
    EvaluationSession session(*sampler, annotator, config, 21);
    while (!session.done()) {
      ASSERT_TRUE(session.Step().ok());
      const auto streaming =
          *session.accumulator().Estimate(sampler->stratum_weights());
      const auto batch = *Estimate(sampler->estimator(), session.sample(),
                                   sampler->stratum_weights());
      EXPECT_EQ(streaming.mu, batch.mu);
      EXPECT_EQ(streaming.n, batch.n);
      EXPECT_EQ(streaming.tau, batch.tau);
      EXPECT_EQ(streaming.num_units, batch.num_units);
      EXPECT_NEAR(streaming.variance, batch.variance,
                  1e-12 * std::max(1.0, batch.variance));
    }
  }
}

TEST(EvaluationSessionTest, DroppingUnitHistoryDoesNotChangeTheRun) {
  const auto kg = MakeKg(0.85);
  OracleAnnotator annotator;
  EvaluationConfig config;
  config.record_trace = true;

  for (const bool twcs : {false, true}) {
    SrsSampler srs_a(kg, SrsConfig{}), srs_b(kg, SrsConfig{});
    TwcsSampler twcs_a(kg, TwcsConfig{}), twcs_b(kg, TwcsConfig{});
    Sampler& a = twcs ? static_cast<Sampler&>(twcs_a) : srs_a;
    Sampler& b = twcs ? static_cast<Sampler&>(twcs_b) : srs_b;

    EvaluationConfig lean = config;
    lean.retain_unit_history = false;
    EvaluationSession retained(a, annotator, config, 33);
    EvaluationSession dropped(b, annotator, lean, 33);
    const auto result_retained = *retained.Run();
    const auto result_dropped = *dropped.Run();
    SCOPED_TRACE(twcs ? "TWCS" : "SRS");
    ExpectSameResult(result_retained, result_dropped);
    EXPECT_FALSE(retained.sample().units().empty());
    EXPECT_TRUE(dropped.sample().units().empty());
    EXPECT_EQ(dropped.sample().num_units(),
              retained.sample().units().size());
  }
}

TEST(EvaluationSessionTest, LeanSessionsKeepASeededReservoirSubsample) {
  // retain_unit_history=false no longer throws every unit away: the
  // session keeps a bounded, seeded reservoir subsample for post-hoc
  // diagnostics, without changing the audit itself.
  const auto kg = MakeKg(0.85);
  OracleAnnotator annotator;
  EvaluationConfig lean;
  lean.retain_unit_history = false;
  lean.unit_reservoir_capacity = 16;

  SrsSampler sampler_a(kg, SrsConfig{}), sampler_b(kg, SrsConfig{});
  EvaluationSession a(sampler_a, annotator, lean, 33);
  EvaluationSession b(sampler_b, annotator, lean, 33);
  const auto result_a = *a.Run();
  const auto result_b = *b.Run();
  ExpectSameResult(result_a, result_b);

  EXPECT_TRUE(a.sample().units().empty());
  const auto& reservoir = a.sample().reservoir_units();
  EXPECT_EQ(reservoir.size(),
            std::min<uint64_t>(16, a.sample().num_units()));
  EXPECT_FALSE(reservoir.empty());
  // Seeded: identical sessions keep the identical subsample.
  ASSERT_EQ(reservoir.size(), b.sample().reservoir_units().size());
  for (size_t i = 0; i < reservoir.size(); ++i) {
    EXPECT_EQ(reservoir[i].cluster, b.sample().reservoir_units()[i].cluster);
    EXPECT_EQ(reservoir[i].correct, b.sample().reservoir_units()[i].correct);
  }

  // Capacity zero opts out; full retention never engages the reservoir.
  EvaluationConfig none = lean;
  none.unit_reservoir_capacity = 0;
  SrsSampler sampler_c(kg, SrsConfig{});
  EvaluationSession c(sampler_c, annotator, none, 33);
  ExpectSameResult(*c.Run(), result_a);
  EXPECT_TRUE(c.sample().reservoir_units().empty());

  EvaluationConfig full;
  full.record_trace = lean.record_trace;
  SrsSampler sampler_d(kg, SrsConfig{});
  EvaluationSession d(sampler_d, annotator, full, 33);
  (void)d.Run();
  EXPECT_FALSE(d.sample().units().empty());
  EXPECT_TRUE(d.sample().reservoir_units().empty());
}

TEST(EvaluationSessionTest, StepByStepMatchesSingleRun) {
  const auto kg = MakeKg(0.85);
  OracleAnnotator annotator;
  EvaluationConfig config;

  SrsSampler loop_sampler(kg, SrsConfig{});
  const auto loop = *RunEvaluation(loop_sampler, annotator, config, 7);

  SrsSampler session_sampler(kg, SrsConfig{});
  EvaluationSession session(session_sampler, annotator, config, 7);
  int steps = 0;
  while (!session.done()) {
    const StepOutcome outcome = *session.Step();
    ++steps;
    EXPECT_EQ(outcome.annotated_triples, session.sample().num_triples());
    if (!outcome.done) EXPECT_GT(outcome.moe, config.moe_threshold);
  }
  EXPECT_EQ(steps, loop.iterations);
  ExpectSameResult(loop, *session.Finish());
}

TEST(EvaluationSessionTest, WarmStatePlumbsAcrossSteps) {
  // The session's AhpdWarmState must track every prior after a step, and —
  // when the fallback SQP runs — hold the carried BFGS curvature so later
  // fallbacks do not restart from identity.
  const auto kg = MakeKg(0.9);
  OracleAnnotator annotator;
  SrsSampler sampler(kg, SrsConfig{.batch_size = 40});
  EvaluationConfig config;
  config.method = IntervalMethod::kAhpd;
  config.moe_threshold = 1e-9;  // Never converges inside the test window.
  config.max_triples = 400;
  config.hpd.use_newton = false;  // Force SQP so a Hessian is produced.
  EvaluationSession session(sampler, annotator, config, 321);
  for (int i = 0; i < 4 && !session.done(); ++i) {
    ASSERT_TRUE(session.Step().ok());
  }
  const AhpdWarmState& warm = session.interval_warm();
  ASSERT_EQ(warm.priors.size(), config.priors.size());
  for (const auto& state : warm.priors) {
    EXPECT_TRUE(state.valid);
    if (state.hpd.shape == BetaShape::kUnimodal) {
      EXPECT_TRUE(state.has_hessian);
      EXPECT_TRUE(state.hpd.path == HpdPath::kSlsqp ||
                  state.hpd.path == HpdPath::kSlsqpFallback);
    }
  }
}

TEST(EvaluationSessionTest, NewtonAndSqpPathsAgreeOnTheSameAudit) {
  // The full audit run twice — Newton-primary versus pure-SQP intervals —
  // must stop at the same step with near-identical intervals (the solver
  // swap is a performance change, not a statistical one).
  const auto kg = MakeKg(0.85);
  OracleAnnotator annotator;
  EvaluationConfig newton_cfg;
  newton_cfg.method = IntervalMethod::kAhpd;
  EvaluationConfig sqp_cfg = newton_cfg;
  sqp_cfg.hpd.use_newton = false;

  SrsSampler s1(kg, SrsConfig{.batch_size = 50});
  SrsSampler s2(kg, SrsConfig{.batch_size = 50});
  const auto newton_run = RunEvaluation(s1, annotator, newton_cfg, 99);
  const auto sqp_run = RunEvaluation(s2, annotator, sqp_cfg, 99);
  ASSERT_TRUE(newton_run.ok());
  ASSERT_TRUE(sqp_run.ok());
  EXPECT_EQ(newton_run->annotated_triples, sqp_run->annotated_triples);
  EXPECT_EQ(newton_run->winning_prior, sqp_run->winning_prior);
  EXPECT_NEAR(newton_run->interval.lower, sqp_run->interval.lower, 1e-8);
  EXPECT_NEAR(newton_run->interval.upper, sqp_run->interval.upper, 1e-8);
}

TEST(EvaluationSessionTest, StepAfterDoneIsANoOp) {
  const auto kg = MakeKg(0.95);
  OracleAnnotator annotator;
  SrsSampler sampler(kg, SrsConfig{});
  EvaluationSession session(sampler, annotator, EvaluationConfig{}, 3);
  const auto result = *session.Run();
  const StepOutcome again = *session.Step();
  EXPECT_TRUE(again.done);
  EXPECT_EQ(again.annotated_triples, result.annotated_triples);
  ExpectSameResult(result, *session.Finish());  // Unchanged.
}

TEST(EvaluationSessionTest, SnapshotProgressesMonotonically) {
  const auto kg = MakeKg(0.85);
  OracleAnnotator annotator;
  SrsSampler sampler(kg, SrsConfig{.batch_size = 10});
  EvaluationSession session(sampler, annotator, EvaluationConfig{}, 5);
  uint64_t last_n = 0;
  while (!session.done()) {
    const StepOutcome outcome = *session.Step();
    EXPECT_EQ(outcome.annotated_triples, last_n + 10);
    last_n = outcome.annotated_triples;
  }
}

TEST(EvaluationSessionTest, MidRunFinishIsASnapshotNotATerminator) {
  const auto kg = MakeKg(0.85);
  OracleAnnotator annotator;
  EvaluationConfig config;

  SrsSampler sampler(kg, SrsConfig{});
  EvaluationSession session(sampler, annotator, config, 9);
  ASSERT_FALSE((*session.Step()).done);
  const auto partial = *session.Finish();
  EXPECT_EQ(partial.annotated_triples, 10u);
  EXPECT_FALSE(partial.converged);

  // The session keeps going and still lands on the RunEvaluation result.
  SrsSampler reference(kg, SrsConfig{});
  ExpectSameResult(*RunEvaluation(reference, annotator, config, 9),
                   *session.Run());
}

TEST(EvaluationSessionTest, FinishBeforeAnyStepFailsCleanly) {
  const auto kg = MakeKg(0.85);
  OracleAnnotator annotator;
  SrsSampler sampler(kg, SrsConfig{});
  EvaluationSession session(sampler, annotator, EvaluationConfig{}, 1);
  const auto result = session.Finish();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(EvaluationSessionTest, InvalidConfigReportedOnStepAndFinish) {
  const auto kg = MakeKg(0.85);
  OracleAnnotator annotator;
  SrsSampler sampler(kg, SrsConfig{});
  EvaluationConfig bad;
  bad.moe_threshold = 0.0;
  EvaluationSession session(sampler, annotator, bad, 1);
  EXPECT_FALSE(session.Step().ok());
  EXPECT_FALSE(session.Finish().ok());
  EXPECT_FALSE(session.Run().ok());
}

TEST(ValidateEvaluationConfigTest, RejectsMinSampleAboveCap) {
  EvaluationConfig config;
  config.min_sample_triples = 500;
  config.max_triples = 100;
  const Status status = ValidateEvaluationConfig(config);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);

  // The guard reaches RunEvaluation too.
  const auto kg = MakeKg(0.85);
  OracleAnnotator annotator;
  SrsSampler sampler(kg, SrsConfig{});
  EXPECT_FALSE(RunEvaluation(sampler, annotator, config, 1).ok());
}

TEST(ValidateEvaluationConfigTest, AcceptsTheDefaults) {
  EXPECT_TRUE(ValidateEvaluationConfig(EvaluationConfig{}).ok());
}

TEST(BuildIntervalTest, ClopperPearsonClampsRoundedTauToN) {
  // A caller-constructed estimate whose mu exceeds 1 (possible for
  // externally computed ratio estimates) used to round to tau > n and
  // break the Clopper-Pearson constructor; the clamp keeps it valid.
  AccuracyEstimate est;
  est.mu = 1.02;
  est.n = 100;
  est.tau = 102;
  est.num_units = 50;
  est.variance = 1e-4;

  EvaluationConfig config;
  config.method = IntervalMethod::kClopperPearson;
  const auto interval = BuildInterval(config, EstimatorKind::kCluster, est);
  ASSERT_TRUE(interval.ok()) << interval.status().ToString();
  EXPECT_LE(interval->upper, 1.0);
  EXPECT_GT(interval->lower, 0.5);
}

}  // namespace
}  // namespace kgacc
