#include "kgacc/eval/service.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "kgacc/kg/synthetic.h"
#include "kgacc/sampling/cluster.h"
#include "kgacc/sampling/srs.h"
#include "kgacc/sampling/stratified.h"
#include "kgacc/stats/replication.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

SyntheticKg MakeKg(double accuracy, uint64_t clusters = 2000,
                   uint64_t seed = 77) {
  SyntheticKgConfig cfg;
  cfg.num_clusters = clusters;
  cfg.mean_cluster_size = 3.0;
  cfg.accuracy = accuracy;
  cfg.seed = seed;
  return *SyntheticKg::Create(cfg);
}

void ExpectSameResult(const EvaluationResult& a, const EvaluationResult& b) {
  EXPECT_EQ(a.annotated_triples, b.annotated_triples);
  EXPECT_EQ(a.distinct_triples, b.distinct_triples);
  EXPECT_EQ(a.distinct_entities, b.distinct_entities);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.winning_prior, b.winning_prior);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.stop_reason, b.stop_reason);
  EXPECT_DOUBLE_EQ(a.mu, b.mu);
  EXPECT_DOUBLE_EQ(a.interval.lower, b.interval.lower);
  EXPECT_DOUBLE_EQ(a.interval.upper, b.interval.upper);
  EXPECT_DOUBLE_EQ(a.cost_seconds, b.cost_seconds);
  EXPECT_DOUBLE_EQ(a.deff, b.deff);
}

/// A mixed workload: two designs x two methods x three seeds on one KG.
std::vector<EvaluationJob> MixedJobs(const Sampler& srs, const Sampler& twcs,
                                     Annotator& annotator) {
  std::vector<EvaluationJob> jobs;
  for (const IntervalMethod method :
       {IntervalMethod::kWilson, IntervalMethod::kAhpd}) {
    for (const Sampler* sampler : {&srs, &twcs}) {
      for (uint64_t i = 0; i < 3; ++i) {
        EvaluationJob job;
        job.sampler = sampler;
        job.annotator = &annotator;
        job.config.method = method;
        job.seed = EvaluationService::DeriveJobSeed(2025, jobs.size());
        job.label = std::string(sampler->name()) + "/" +
                    IntervalMethodName(method);
        jobs.push_back(std::move(job));
      }
    }
  }
  return jobs;
}

TEST(EvaluationServiceTest, ResultsAreIndependentOfThreadCount) {
  const auto kg = MakeKg(0.85);
  OracleAnnotator annotator;
  SrsSampler srs(kg, SrsConfig{});
  TwcsSampler twcs(kg, TwcsConfig{});
  const auto jobs = MixedJobs(srs, twcs, annotator);

  EvaluationService one(EvaluationService::Options{.num_threads = 1});
  const auto baseline = one.RunBatch(jobs);
  ASSERT_EQ(baseline.outcomes.size(), jobs.size());
  for (const auto& outcome : baseline.outcomes) {
    ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  }

  for (const int threads : {2, 8}) {
    EvaluationService service(
        EvaluationService::Options{.num_threads = threads});
    EXPECT_EQ(service.num_threads(), threads);
    const auto batch = service.RunBatch(jobs);
    ASSERT_EQ(batch.outcomes.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
      SCOPED_TRACE(jobs[i].label + " @" + std::to_string(threads));
      ASSERT_TRUE(batch.outcomes[i].status.ok());
      ExpectSameResult(baseline.outcomes[i].result, batch.outcomes[i].result);
    }
  }
}

TEST(EvaluationServiceTest, PinnedAndUnpinnedExecutionAgree) {
  const auto kg = MakeKg(0.85);
  OracleAnnotator annotator;
  SrsSampler srs(kg, SrsConfig{.without_replacement = true});
  TwcsSampler twcs(kg, TwcsConfig{});
  const auto jobs = MixedJobs(srs, twcs, annotator);

  EvaluationService unpinned(EvaluationService::Options{
      .num_threads = 2, .reuse_contexts = false});
  const auto reference = unpinned.RunBatch(jobs);
  for (const auto& outcome : reference.outcomes) {
    ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  }

  // Context reuse (warm sampler clones + recycled scratch) must be
  // invisible in the results, at several pinning granularities. Running two
  // batches back to back also exercises reuse of contexts *across* batches.
  for (const int groups_per_thread : {1, 4}) {
    EvaluationService pinned(EvaluationService::Options{
        .num_threads = 2, .reuse_contexts = true,
        .groups_per_thread = groups_per_thread});
    for (int round = 0; round < 2; ++round) {
      const auto batch = pinned.RunBatch(jobs);
      ASSERT_EQ(batch.outcomes.size(), jobs.size());
      for (size_t i = 0; i < jobs.size(); ++i) {
        SCOPED_TRACE(jobs[i].label + " g" + std::to_string(groups_per_thread) +
                     " round " + std::to_string(round));
        ASSERT_TRUE(batch.outcomes[i].status.ok());
        ExpectSameResult(reference.outcomes[i].result,
                         batch.outcomes[i].result);
      }
    }
  }
}

TEST(EvaluationServiceTest, MatchesDirectRunEvaluation) {
  const auto kg = MakeKg(0.85);
  OracleAnnotator annotator;
  SrsSampler srs(kg, SrsConfig{});
  TwcsSampler twcs(kg, TwcsConfig{});
  const auto jobs = MixedJobs(srs, twcs, annotator);

  EvaluationService service(EvaluationService::Options{.num_threads = 4});
  const auto batch = service.RunBatch(jobs);
  for (size_t i = 0; i < jobs.size(); ++i) {
    SCOPED_TRACE(jobs[i].label);
    ASSERT_TRUE(batch.outcomes[i].status.ok());
    EXPECT_EQ(batch.outcomes[i].label, jobs[i].label);
    EXPECT_EQ(batch.outcomes[i].seed, jobs[i].seed);
    // A fresh clone run serially through the wrapper must agree.
    auto clone = jobs[i].sampler->Clone();
    ASSERT_NE(clone, nullptr);
    ExpectSameResult(
        *RunEvaluation(*clone, annotator, jobs[i].config, jobs[i].seed),
        batch.outcomes[i].result);
  }
}

TEST(EvaluationServiceTest, PerJobFailuresDoNotPoisonTheBatch) {
  const auto kg = MakeKg(0.85);
  OracleAnnotator annotator;
  SrsSampler srs(kg, SrsConfig{});

  std::vector<EvaluationJob> jobs(3);
  jobs[0].sampler = &srs;
  jobs[0].annotator = &annotator;
  jobs[0].seed = 1;
  jobs[1].sampler = &srs;
  jobs[1].annotator = &annotator;
  jobs[1].config.moe_threshold = 0.0;  // Invalid.
  jobs[2].sampler = nullptr;           // Invalid.
  jobs[2].annotator = &annotator;

  EvaluationService service(EvaluationService::Options{.num_threads = 2});
  const auto batch = service.RunBatch(jobs);
  EXPECT_TRUE(batch.outcomes[0].status.ok());
  EXPECT_TRUE(batch.outcomes[0].result.converged);
  EXPECT_FALSE(batch.outcomes[1].status.ok());
  EXPECT_FALSE(batch.outcomes[2].status.ok());
  EXPECT_EQ(batch.stats.jobs, 3u);
  EXPECT_EQ(batch.stats.failed, 2u);
  EXPECT_EQ(batch.stats.annotated_triples,
            batch.outcomes[0].result.annotated_triples);
}

TEST(EvaluationServiceTest, EmptyBatchIsFine) {
  EvaluationService service(EvaluationService::Options{.num_threads = 2});
  const auto batch = service.RunBatch({});
  EXPECT_TRUE(batch.outcomes.empty());
  EXPECT_EQ(batch.stats.jobs, 0u);
}

TEST(EvaluationServiceTest, ThroughputStatsAddUp) {
  const auto kg = MakeKg(0.9);
  OracleAnnotator annotator;
  SrsSampler srs(kg, SrsConfig{});
  TwcsSampler twcs(kg, TwcsConfig{});
  const auto jobs = MixedJobs(srs, twcs, annotator);

  EvaluationService service(EvaluationService::Options{.num_threads = 2});
  const auto batch = service.RunBatch(jobs);
  uint64_t total = 0;
  for (const auto& outcome : batch.outcomes) {
    ASSERT_TRUE(outcome.status.ok());
    total += outcome.result.annotated_triples;
  }
  EXPECT_EQ(batch.stats.annotated_triples, total);
  EXPECT_EQ(batch.stats.failed, 0u);
  EXPECT_GT(batch.stats.wall_seconds, 0.0);
  EXPECT_GT(batch.stats.audits_per_second, 0.0);
  EXPECT_GT(batch.stats.triples_per_second, 0.0);
}

TEST(EvaluationServiceTest, DeriveJobSeedSplitsIntoDistinctStreams) {
  std::set<uint64_t> seeds;
  for (uint64_t i = 0; i < 1000; ++i) {
    seeds.insert(EvaluationService::DeriveJobSeed(42, i));
  }
  EXPECT_EQ(seeds.size(), 1000u);  // No collisions across indices.
  EXPECT_NE(EvaluationService::DeriveJobSeed(1, 0),
            EvaluationService::DeriveJobSeed(2, 0));
}

TEST(RunReplicationsParallelTest, MatchesSerialProtocolExactly) {
  const auto kg = MakeKg(0.85);
  OracleAnnotator annotator;
  EvaluationConfig config;
  const int reps = 40;
  EvaluationService service(EvaluationService::Options{.num_threads = 4});

  {
    SrsSampler serial_sampler(kg, SrsConfig{});
    const auto serial =
        *RunReplications(serial_sampler, annotator, config, reps, 1000);
    SrsSampler parallel_sampler(kg, SrsConfig{});
    const auto parallel = *RunReplicationsParallel(
        service, parallel_sampler, annotator, config, reps, 1000);
    EXPECT_EQ(serial.triples, parallel.triples);
    EXPECT_EQ(serial.cost_hours, parallel.cost_hours);
    EXPECT_EQ(serial.mu, parallel.mu);
    EXPECT_EQ(serial.interval_widths, parallel.interval_widths);
    EXPECT_EQ(serial.unconverged, parallel.unconverged);
    EXPECT_EQ(serial.zero_width, parallel.zero_width);
    EXPECT_EQ(serial.prior_wins, parallel.prior_wins);
  }
  {
    TwcsSampler serial_sampler(kg, TwcsConfig{});
    const auto serial =
        *RunReplications(serial_sampler, annotator, config, reps, 2000);
    TwcsSampler parallel_sampler(kg, TwcsConfig{});
    const auto parallel = *RunReplicationsParallel(
        service, parallel_sampler, annotator, config, reps, 2000);
    EXPECT_EQ(serial.triples, parallel.triples);
    EXPECT_EQ(serial.mu, parallel.mu);
  }
  {
    // Stratified designs too: Reset() restores fresh carry state, so the
    // serial reuse protocol and per-job clones see identical streams.
    StratifiedSampler serial_sampler(kg, StratifiedConfig{});
    const auto serial =
        *RunReplications(serial_sampler, annotator, config, reps, 3000);
    StratifiedSampler parallel_sampler(kg, StratifiedConfig{});
    const auto parallel = *RunReplicationsParallel(
        service, parallel_sampler, annotator, config, reps, 3000);
    EXPECT_EQ(serial.triples, parallel.triples);
    EXPECT_EQ(serial.mu, parallel.mu);
  }
}

TEST(SamplerCloneTest, ClonesAreIndependentAndEquivalent) {
  const auto kg = MakeKg(0.85);
  SrsSampler srs(kg, SrsConfig{.without_replacement = true});
  TwcsSampler twcs(kg, TwcsConfig{});
  StratifiedSampler ssrs(kg, StratifiedConfig{});
  for (const Sampler* prototype :
       std::vector<const Sampler*>{&srs, &twcs, &ssrs}) {
    SCOPED_TRACE(prototype->name());
    auto a = prototype->Clone();
    auto b = prototype->Clone();
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_STREQ(a->name(), prototype->name());
    // Same seed, independent instances: identical batches.
    Rng rng_a(5), rng_b(5);
    SampleBatch batch_a, batch_b;
    ASSERT_TRUE(a->NextBatch(&rng_a, &batch_a).ok());
    ASSERT_TRUE(b->NextBatch(&rng_b, &batch_b).ok());
    ASSERT_EQ(batch_a.size(), batch_b.size());
    for (size_t i = 0; i < batch_a.size(); ++i) {
      EXPECT_EQ(batch_a.unit(i).cluster, batch_b.unit(i).cluster);
      ASSERT_EQ(batch_a.unit(i).offset_count, batch_b.unit(i).offset_count);
      const auto oa = batch_a.offsets(i);
      const auto ob = batch_b.offsets(i);
      EXPECT_TRUE(std::equal(oa.begin(), oa.end(), ob.begin()));
    }
  }
}

TEST(EvaluationServiceTest, HpdStatsAggregateAcrossWorkers) {
  // The per-thread HPD counters must fold into the batch stats — and,
  // being pure algorithm properties, agree exactly across thread counts
  // and with a pinned-vs-unpinned cross-check.
  const auto kg = MakeKg(0.85);
  OracleAnnotator annotator;
  SrsSampler srs(kg, SrsConfig{});
  TwcsSampler twcs(kg, TwcsConfig{});
  const auto jobs = MixedJobs(srs, twcs, annotator);

  EvaluationService one(EvaluationService::Options{.num_threads = 1});
  const auto baseline = one.RunBatch(jobs);
  // The mixed workload includes aHPD jobs, so solves must be visible.
  EXPECT_GT(baseline.stats.hpd.total_solves(), 0u);
  EXPECT_GT(baseline.stats.hpd.total_beta_evals(), 0u);

  EvaluationService four(EvaluationService::Options{.num_threads = 4});
  const auto parallel = four.RunBatch(jobs);
  EXPECT_EQ(parallel.stats.hpd.total_solves(),
            baseline.stats.hpd.total_solves());
  EXPECT_EQ(parallel.stats.hpd.total_beta_evals(),
            baseline.stats.hpd.total_beta_evals());
  EXPECT_EQ(parallel.stats.hpd.warm_cache_hits,
            baseline.stats.hpd.warm_cache_hits);
  EXPECT_EQ(parallel.stats.hpd.newton.solves,
            baseline.stats.hpd.newton.solves);

  EvaluationService unpinned(EvaluationService::Options{
      .num_threads = 4, .reuse_contexts = false});
  const auto fresh = unpinned.RunBatch(jobs);
  EXPECT_EQ(fresh.stats.hpd.total_solves(),
            baseline.stats.hpd.total_solves());
  EXPECT_EQ(fresh.stats.hpd.total_beta_evals(),
            baseline.stats.hpd.total_beta_evals());
}

TEST(EvaluationServiceTest, RegisteredPrototypesKeepClonesAcrossBatches) {
  const auto kg = MakeKg(0.85, 500);
  OracleAnnotator annotator;
  SrsSampler srs(kg, SrsConfig{});
  // One worker, one group: exactly one context ever clones.
  EvaluationService service(EvaluationService::Options{
      .num_threads = 1, .groups_per_thread = 1});
  std::vector<EvaluationJob> jobs(4);
  for (size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].sampler = &srs;
    jobs[i].annotator = &annotator;
    jobs[i].seed = EvaluationService::DeriveJobSeed(9, i);
  }

  // Unregistered: the clone cache is dropped at the end of every batch,
  // so each batch mints a fresh clone.
  service.RunBatch(jobs);
  EXPECT_EQ(service.sampler_clones_created(), 1u);
  service.RunBatch(jobs);
  EXPECT_EQ(service.sampler_clones_created(), 2u);

  // Registered: the clone survives, later batches mint nothing.
  service.RegisterPrototype(&srs);
  service.RunBatch(jobs);
  EXPECT_EQ(service.sampler_clones_created(), 3u);
  service.RunBatch(jobs);
  service.RunBatch(jobs);
  EXPECT_EQ(service.sampler_clones_created(), 3u);

  // Results are unaffected by cache reuse (sessions Reset their sampler).
  const auto with_cache = service.RunBatch(jobs);
  service.UnregisterPrototype(&srs);
  const auto without_cache = service.RunBatch(jobs);
  ASSERT_EQ(with_cache.outcomes.size(), without_cache.outcomes.size());
  for (size_t i = 0; i < with_cache.outcomes.size(); ++i) {
    ASSERT_TRUE(with_cache.outcomes[i].status.ok());
    ASSERT_TRUE(without_cache.outcomes[i].status.ok());
    ExpectSameResult(with_cache.outcomes[i].result,
                     without_cache.outcomes[i].result);
  }
  // Unregistering dropped the cached clone: the next batch re-clones.
  const uint64_t after_unregister = service.sampler_clones_created();
  service.RunBatch(jobs);
  EXPECT_EQ(service.sampler_clones_created(), after_unregister + 1);
}

TEST(EvaluationServiceTest, StressByteIdenticalAcrossThreadsGroupingAndReuse) {
  // The determinism contract, hammered: the same batch through every
  // execution shape — thread counts {1, 2, 4, hardware}, context reuse on
  // and off, and group-size extremes — must be byte-identical to the
  // single-threaded fresh-state reference.
  const auto kg = MakeKg(0.85);
  NoisyAnnotator annotator(0.1);  // Stochastic: Rng misuse would show here.
  SrsSampler srs(kg, SrsConfig{.without_replacement = true});
  TwcsSampler twcs(kg, TwcsConfig{});
  std::vector<EvaluationJob> jobs;
  for (const IntervalMethod method :
       {IntervalMethod::kWilson, IntervalMethod::kAhpd}) {
    for (const Sampler* sampler : std::vector<const Sampler*>{&srs, &twcs}) {
      for (uint64_t i = 0; i < 4; ++i) {
        EvaluationJob job;
        job.sampler = sampler;
        job.annotator = &annotator;
        job.config.method = method;
        job.seed = EvaluationService::DeriveJobSeed(7, jobs.size());
        jobs.push_back(std::move(job));
      }
    }
  }

  EvaluationService reference_service(EvaluationService::Options{
      .num_threads = 1, .reuse_contexts = false});
  const auto reference = reference_service.RunBatch(jobs);
  for (const auto& outcome : reference.outcomes) {
    ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  }

  std::set<int> thread_counts{1, 2, 4};
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0) thread_counts.insert(static_cast<int>(hw));
  for (const int threads : thread_counts) {
    for (const bool reuse : {true, false}) {
      // min_jobs_per_group = 1 removes the grouping floor, maximizing the
      // number of groups (and so steal pressure) for the reuse path.
      for (const int min_per_group : {1, 8}) {
        EvaluationService service(EvaluationService::Options{
            .num_threads = threads, .reuse_contexts = reuse,
            .min_jobs_per_group = min_per_group});
        const auto batch = service.RunBatch(jobs);
        ASSERT_EQ(batch.outcomes.size(), jobs.size());
        for (size_t i = 0; i < jobs.size(); ++i) {
          SCOPED_TRACE("job " + std::to_string(i) + " @" +
                       std::to_string(threads) + "t reuse=" +
                       std::to_string(reuse) + " min=" +
                       std::to_string(min_per_group));
          ASSERT_TRUE(batch.outcomes[i].status.ok());
          ExpectSameResult(reference.outcomes[i].result,
                           batch.outcomes[i].result);
        }
      }
    }
  }
}

/// Wraps the oracle and records which threads its Annotate ever ran on.
class ThreadRecordingAnnotator final : public Annotator {
 public:
  bool Annotate(const KgView& kg, const TripleRef& ref, Rng* rng) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      threads_.insert(std::this_thread::get_id());
    }
    return inner_.Annotate(kg, ref, rng);
  }

  size_t distinct_threads() const {
    std::lock_guard<std::mutex> lock(mu_);
    return threads_.size();
  }

 private:
  OracleAnnotator inner_;
  mutable std::mutex mu_;
  std::set<std::thread::id> threads_;
};

TEST(EvaluationServiceTest, SingleGroupBatchNeverMigratesMidBatch) {
  // Whole-group handoff: with the min_jobs_per_group floor collapsing a
  // small batch into one group, that group is one pool task — every job in
  // it must run on a single thread, no mid-batch migration, regardless of
  // how many workers sit idle.
  const auto kg = MakeKg(0.85, 500);
  ThreadRecordingAnnotator annotator;
  SrsSampler srs(kg, SrsConfig{});
  std::vector<EvaluationJob> jobs(4);  // 4 jobs < min_jobs_per_group = 8.
  for (size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].sampler = &srs;
    jobs[i].annotator = &annotator;
    jobs[i].seed = EvaluationService::DeriveJobSeed(11, i);
  }
  EvaluationService service(EvaluationService::Options{.num_threads = 4});
  const auto batch = service.RunBatch(jobs);
  for (const auto& outcome : batch.outcomes) {
    ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  }
  EXPECT_EQ(batch.stats.groups, 1u);
  EXPECT_EQ(annotator.distinct_threads(), 1u);
}

TEST(EvaluationServiceTest, BatchStatsReportTheTimingSplit) {
  const auto kg = MakeKg(0.85);
  OracleAnnotator annotator;
  SrsSampler srs(kg, SrsConfig{});
  TwcsSampler twcs(kg, TwcsConfig{});
  const auto jobs = MixedJobs(srs, twcs, annotator);

  EvaluationService service(EvaluationService::Options{.num_threads = 2});
  const auto first = service.RunBatch(jobs);
  // Spawn is paid at construction and charged to the first batch only; the
  // persistent pool makes every later batch report zero there.
  EXPECT_GT(first.stats.spawn_seconds, 0.0);
  EXPECT_GT(first.stats.groups, 0u);
  EXPECT_LE(first.stats.stolen_groups, first.stats.groups);
  EXPECT_GE(first.stats.submit_seconds, 0.0);
  EXPECT_GE(first.stats.barrier_seconds, 0.0);
  EXPECT_GT(first.stats.run_seconds, 0.0);

  const auto second = service.RunBatch(jobs);
  EXPECT_EQ(second.stats.spawn_seconds, 0.0);
  EXPECT_GT(second.stats.run_seconds, 0.0);

  // The unpinned path runs one task per job and reports that as the group
  // count; handoff phases do not exist there and stay zero.
  EvaluationService unpinned(EvaluationService::Options{
      .num_threads = 2, .reuse_contexts = false});
  const auto fresh = unpinned.RunBatch(jobs);
  EXPECT_EQ(fresh.stats.groups, jobs.size());
  EXPECT_EQ(fresh.stats.submit_seconds, 0.0);
  EXPECT_EQ(fresh.stats.barrier_seconds, 0.0);
  EXPECT_GT(fresh.stats.run_seconds, 0.0);
}

TEST(EvaluationServiceTest, OnStepHookObservesEveryIterationAndCanAbort) {
  const auto kg = MakeKg(0.85, 500);
  OracleAnnotator annotator;
  SrsSampler srs(kg, SrsConfig{});
  EvaluationService service(EvaluationService::Options{.num_threads = 2});

  std::atomic<int> observed{0};
  EvaluationJob counting;
  counting.sampler = &srs;
  counting.annotator = &annotator;
  counting.seed = 4;
  counting.on_step = [&observed](const EvaluationSession& session) {
    ++observed;
    EXPECT_GT(session.iterations(), 0);
    return Status::OK();
  };
  EvaluationJob aborting = counting;
  aborting.on_step = [](const EvaluationSession& session) {
    return session.iterations() >= 2
               ? Status::IoError("checkpoint sink full")
               : Status::OK();
  };
  const auto batch = service.RunBatch({counting, aborting});
  ASSERT_EQ(batch.outcomes.size(), 2u);
  ASSERT_TRUE(batch.outcomes[0].status.ok());
  EXPECT_EQ(observed.load(), batch.outcomes[0].result.iterations);
  // The hooked job's result matches the unhooked reference bit for bit.
  EvaluationJob plain = counting;
  plain.on_step = nullptr;
  const auto reference = service.RunBatch({plain});
  ASSERT_TRUE(reference.outcomes[0].status.ok());
  ExpectSameResult(batch.outcomes[0].result, reference.outcomes[0].result);
  // The aborting hook fails its own job only, with its own status.
  EXPECT_EQ(batch.outcomes[1].status.code(), StatusCode::kIoError);
  EXPECT_EQ(batch.stats.failed, 1u);
}

/// Throws from inside the evaluation loop after a few judgments — the
/// misbehaving-user-annotator case the worker boundary must contain.
class ThrowingAnnotator final : public Annotator {
 public:
  explicit ThrowingAnnotator(int throw_after) : throw_after_(throw_after) {}
  bool Annotate(const KgView& kg, const TripleRef& ref, Rng* rng) override {
    if (++calls_ > throw_after_) {
      throw std::runtime_error("annotator backend lost connection");
    }
    return oracle_.Annotate(kg, ref, rng);
  }

 private:
  OracleAnnotator oracle_;
  int throw_after_;
  int calls_ = 0;
};

TEST(EvaluationServiceTest, ThrowingAnnotatorFailsItsJobNotTheProcess) {
  const auto kg = MakeKg(0.85, 500);
  OracleAnnotator healthy;
  ThrowingAnnotator throwing(5);
  SrsSampler srs(kg, SrsConfig{});
  EvaluationService service(EvaluationService::Options{.num_threads = 2});

  EvaluationJob good;
  good.sampler = &srs;
  good.annotator = &healthy;
  good.seed = 11;
  EvaluationJob bad = good;
  bad.annotator = &throwing;
  const auto batch = service.RunBatch({good, bad});
  ASSERT_EQ(batch.outcomes.size(), 2u);
  // The healthy job is untouched; the throwing one reports kInternal with
  // the exception text instead of std::terminate taking the process down.
  EXPECT_TRUE(batch.outcomes[0].status.ok());
  EXPECT_EQ(batch.outcomes[1].status.code(), StatusCode::kInternal);
  EXPECT_NE(batch.outcomes[1].status.message().find("lost connection"),
            std::string::npos);
  EXPECT_EQ(batch.stats.failed, 1u);
  // The pool survives for the next batch.
  const auto again = service.RunBatch({good});
  EXPECT_TRUE(again.outcomes[0].status.ok());
}

TEST(EvaluationServiceTest, StepBudgetCancelsWithDeadlineExceeded) {
  const auto kg = MakeKg(0.85, 500);
  OracleAnnotator annotator;
  SrsSampler srs(kg, SrsConfig{});
  EvaluationService service(EvaluationService::Options{.num_threads = 2});

  EvaluationJob job;
  job.sampler = &srs;
  job.annotator = &annotator;
  job.seed = 5;
  job.config.moe_threshold = 0.001;  // Far more steps than the budget.
  job.max_steps = 2;
  const auto batch = service.RunBatch({job});
  ASSERT_EQ(batch.outcomes.size(), 1u);
  EXPECT_EQ(batch.outcomes[0].status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(batch.outcomes[0].deadline_exceeded);
  EXPECT_EQ(batch.stats.deadline_hits, 1u);
  EXPECT_EQ(batch.stats.failed, 1u);
}

TEST(EvaluationServiceTest, WallClockDeadlineCancelsWithDeadlineExceeded) {
  const auto kg = MakeKg(0.85, 500);
  OracleAnnotator annotator;
  SrsSampler srs(kg, SrsConfig{});
  EvaluationService service(EvaluationService::Options{.num_threads = 1});

  EvaluationJob job;
  job.sampler = &srs;
  job.annotator = &annotator;
  job.seed = 6;
  job.config.moe_threshold = 0.001;
  job.deadline_seconds = 1e-9;  // Any real step overruns this.
  const auto batch = service.RunBatch({job});
  ASSERT_EQ(batch.outcomes.size(), 1u);
  EXPECT_EQ(batch.outcomes[0].status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(batch.outcomes[0].deadline_exceeded);
  EXPECT_EQ(batch.stats.deadline_hits, 1u);
}

TEST(EvaluationServiceTest, BudgetsGenerousEnoughDoNotPerturbResults) {
  // A budgeted job that never hits its budget must land on the exact bytes
  // of the unbudgeted run (the budgeted path steps explicitly).
  const auto kg = MakeKg(0.85, 500);
  OracleAnnotator annotator;
  SrsSampler srs(kg, SrsConfig{});
  EvaluationService service(EvaluationService::Options{.num_threads = 2});

  EvaluationJob plain;
  plain.sampler = &srs;
  plain.annotator = &annotator;
  plain.seed = 7;
  EvaluationJob budgeted = plain;
  budgeted.max_steps = 1u << 20;
  budgeted.deadline_seconds = 3600.0;
  const auto batch = service.RunBatch({plain, budgeted});
  ASSERT_TRUE(batch.outcomes[0].status.ok());
  ASSERT_TRUE(batch.outcomes[1].status.ok());
  ExpectSameResult(batch.outcomes[0].result, batch.outcomes[1].result);
  EXPECT_FALSE(batch.outcomes[1].deadline_exceeded);
}

TEST(EvaluationServiceTest, RobustnessCollectorFlowsIntoOutcomeAndStats) {
  const auto kg = MakeKg(0.85, 500);
  OracleAnnotator annotator;
  SrsSampler srs(kg, SrsConfig{});
  EvaluationService service(EvaluationService::Options{.num_threads = 2});

  EvaluationJob clean;
  clean.sampler = &srs;
  clean.annotator = &annotator;
  clean.seed = 8;
  EvaluationJob shaky = clean;
  shaky.robustness = [] { return JobRobustness{true, 7}; };
  const auto batch = service.RunBatch({clean, shaky});
  ASSERT_EQ(batch.outcomes.size(), 2u);
  EXPECT_FALSE(batch.outcomes[0].degraded);
  EXPECT_EQ(batch.outcomes[0].retries, 0u);
  EXPECT_TRUE(batch.outcomes[1].degraded);
  EXPECT_EQ(batch.outcomes[1].retries, 7u);
  EXPECT_EQ(batch.stats.degraded_jobs, 1u);
  EXPECT_EQ(batch.stats.total_retries, 7u);
  EXPECT_EQ(batch.stats.deadline_hits, 0u);
}

TEST(EvaluationServiceTest, UnarmedDefaultReportsZeroRobustnessCounters) {
  const auto kg = MakeKg(0.85, 500);
  OracleAnnotator annotator;
  SrsSampler srs(kg, SrsConfig{});
  EvaluationService service(EvaluationService::Options{.num_threads = 2});
  const auto batch = service.RunBatch(MixedJobs(srs, srs, annotator));
  EXPECT_EQ(batch.stats.degraded_jobs, 0u);
  EXPECT_EQ(batch.stats.total_retries, 0u);
  EXPECT_EQ(batch.stats.deadline_hits, 0u);
  for (const EvaluationJobOutcome& out : batch.outcomes) {
    EXPECT_FALSE(out.degraded);
    EXPECT_EQ(out.retries, 0u);
    EXPECT_FALSE(out.deadline_exceeded);
  }
}

}  // namespace
}  // namespace kgacc
