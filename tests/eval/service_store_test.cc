// Store-backed EvaluationService jobs: many jobs in one batch share a
// single AnnotationStore through the group-commit queue. The contract under
// test is the ISSUE acceptance criterion — the durable label set is
// byte-identical regardless of worker-thread count or commit batching — plus
// the service-level accounting (store hits / oracle calls / commit stats
// surface in outcomes and batch stats) and the repay property: a second
// batch over a populated store performs zero oracle calls.

#include "kgacc/eval/service.h"

#include <unistd.h>

#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "kgacc/kg/synthetic.h"
#include "kgacc/sampling/srs.h"
#include "kgacc/store/annotation_store.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

std::string TempPath(const char* name) {
  return testing::TempDir() + "/kgacc_service_store_test_" + name + "_" +
         std::to_string(::getpid());
}

SyntheticKg MakeKg() {
  SyntheticKgConfig cfg;
  cfg.num_clusters = 600;
  cfg.mean_cluster_size = 3.0;
  cfg.accuracy = 0.84;
  cfg.seed = 19;
  return *SyntheticKg::Create(cfg);
}

std::map<std::pair<uint64_t, uint64_t>, bool> AllLabels(
    const AnnotationStore& store, const SyntheticKg& kg) {
  std::map<std::pair<uint64_t, uint64_t>, bool> labels;
  for (uint64_t cluster = 0; cluster < kg.num_clusters(); ++cluster) {
    for (uint64_t offset = 0; offset < kg.cluster_size(cluster); ++offset) {
      const auto label = store.Lookup(cluster, offset);
      if (label.has_value()) labels[{cluster, offset}] = *label;
    }
  }
  return labels;
}

/// Eight jobs over one KG, all pointed at the same store with distinct
/// audit ids — the multi-tenant workload the group-commit queue exists for.
std::vector<EvaluationJob> StoreJobs(const Sampler& srs, Annotator& annotator,
                                     AnnotationStore* store) {
  std::vector<EvaluationJob> jobs;
  for (uint64_t i = 0; i < 8; ++i) {
    EvaluationJob job;
    job.sampler = &srs;
    job.annotator = &annotator;
    job.seed = EvaluationService::DeriveJobSeed(909, i);
    job.label = "store-job-" + std::to_string(i);
    job.store = store;
    job.audit_id = i + 1;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

TEST(ServiceStoreTest, SharedStoreLabelSetIsIndependentOfThreadCount) {
  const auto kg = MakeKg();
  OracleAnnotator annotator;
  SrsSampler srs(kg, SrsConfig{});

  std::map<std::pair<uint64_t, uint64_t>, bool> baseline_labels;
  uint64_t baseline_count = 0;
  for (const int threads : {1, 2, 4}) {
    SCOPED_TRACE(threads);
    const std::string path =
        TempPath(("threads_" + std::to_string(threads)).c_str());
    std::remove(path.c_str());
    auto store = AnnotationStore::Open(path);
    ASSERT_TRUE(store.ok());
    const auto jobs = StoreJobs(srs, annotator, store->get());

    EvaluationService service(
        EvaluationService::Options{.num_threads = threads});
    const auto batch = service.RunBatch(jobs);
    ASSERT_EQ(batch.outcomes.size(), jobs.size());
    uint64_t oracle_calls = 0;
    for (const auto& outcome : batch.outcomes) {
      ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
      // Unarmed failpoints: durability never silently degrades.
      EXPECT_FALSE(outcome.degraded) << outcome.label;
      oracle_calls += outcome.store_oracle_calls;
    }
    // Every label that reached the oracle is on disk, and the service's
    // batch accounting saw the commit traffic.
    EXPECT_GT(oracle_calls, 0u);
    EXPECT_EQ(batch.stats.store_oracle_calls, oracle_calls);
    EXPECT_GT(batch.stats.store_commit_batches, 0u);
    EXPECT_GE(batch.stats.store_commit_frames,
              batch.stats.store_commit_batches);

    // The criterion itself: reopen from disk (replay, not the in-memory
    // index) and compare the durable label set across thread counts.
    store->reset();
    auto reopened = AnnotationStore::Open(path);
    ASSERT_TRUE(reopened.ok());
    const auto labels = AllLabels(**reopened, kg);
    if (baseline_labels.empty()) {
      baseline_labels = labels;
      baseline_count = (*reopened)->num_labeled();
      ASSERT_GT(baseline_count, 0u);
    } else {
      EXPECT_EQ(labels, baseline_labels);
      EXPECT_EQ((*reopened)->num_labeled(), baseline_count);
    }
    std::remove(path.c_str());
  }
}

TEST(ServiceStoreTest, SecondBatchOverPopulatedStorePaysZeroOracleCalls) {
  const auto kg = MakeKg();
  OracleAnnotator annotator;
  SrsSampler srs(kg, SrsConfig{});
  const std::string path = TempPath("repay");
  std::remove(path.c_str());
  auto store = AnnotationStore::Open(path);
  ASSERT_TRUE(store.ok());
  const auto jobs = StoreJobs(srs, annotator, store->get());

  EvaluationService service(EvaluationService::Options{.num_threads = 2});
  const auto first = service.RunBatch(jobs);
  for (const auto& outcome : first.outcomes) {
    ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  }
  ASSERT_GT(first.stats.store_oracle_calls, 0u);

  // The identical batch again: every annotation the jobs draw is already
  // on file, so the oracle is never consulted and per-job results match
  // the first run exactly (deterministic oracle, same seeds).
  const auto second = service.RunBatch(jobs);
  ASSERT_EQ(second.outcomes.size(), first.outcomes.size());
  uint64_t hits = 0;
  for (size_t i = 0; i < second.outcomes.size(); ++i) {
    const auto& outcome = second.outcomes[i];
    ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
    EXPECT_EQ(outcome.store_oracle_calls, 0u);
    hits += outcome.store_hits;
    EXPECT_EQ(outcome.result.mu, first.outcomes[i].result.mu);
    EXPECT_EQ(outcome.result.annotated_triples,
              first.outcomes[i].result.annotated_triples);
  }
  EXPECT_GT(hits, 0u);
  EXPECT_EQ(second.stats.store_oracle_calls, 0u);
  EXPECT_EQ(second.stats.store_hits, hits);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace kgacc
