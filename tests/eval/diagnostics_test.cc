// Per-unit diagnostics source selection: with unit retention on the full
// `units()` history feeds the bootstrap and design-effect estimates; with
// retention off — the O(1)-memory audit mode — the seeded uniform
// reservoir stands in, and the effective sizes still anchor to the full
// stream's totals. The reservoir estimate must agree with the full-history
// estimate on the same clustered population.

#include "kgacc/eval/diagnostics.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

/// A strongly clustered unit stream: units alternate between all-correct
/// and all-wrong blocks, so the between-unit variance (and hence deff) is
/// far above the SRS reference.
AnnotatedUnit ClusteredUnit(int i) {
  AnnotatedUnit unit;
  unit.cluster = static_cast<uint64_t>(i);
  unit.cluster_population = 5;
  unit.drawn = 5;
  unit.correct = (i % 2 == 0) ? 5 : (i % 4 == 1 ? 1 : 2);
  return unit;
}

TEST(SampleDiagnosticsTest, FullHistoryPathUsesEveryUnit) {
  AnnotatedSample sample;
  for (int i = 0; i < 40; ++i) sample.Add(ClusteredUnit(i));
  const auto diag = ComputeSampleDiagnostics(sample);
  ASSERT_TRUE(diag.ok()) << diag.status().ToString();
  EXPECT_FALSE(diag->from_reservoir);
  EXPECT_EQ(diag->units_used, 40u);
  EXPECT_EQ(diag->units_total, 40u);
  // Mean of per-unit accuracies: half the units at 1.0, a quarter at 0.2,
  // a quarter at 0.4 -> 0.65.
  EXPECT_NEAR(diag->unit_mean, 0.65, 1e-12);
  EXPECT_LE(diag->unit_mean_interval.lower, diag->unit_mean);
  EXPECT_GE(diag->unit_mean_interval.upper, diag->unit_mean);
  EXPECT_GT(diag->unit_mean_interval.Width(), 0.0);
  // Clustered errors inflate the design effect well past SRS.
  EXPECT_GT(diag->deff, 1.0);
  EXPECT_NEAR(diag->n_eff,
              static_cast<double>(sample.num_triples()) / diag->deff, 1e-9);
  EXPECT_NEAR(diag->tau_eff, 0.65 * diag->n_eff, 1e-9);
}

TEST(SampleDiagnosticsTest, ReservoirFeedsDiagnosticsWhenRetentionIsOff) {
  // The O(1)-memory configuration: retention off, reservoir armed. The
  // diagnostics must consume the reservoir subsample and scale the
  // effective sizes by the *full* stream totals.
  AnnotatedSample sample;
  sample.set_retain_units(false);
  sample.EnableReservoir(64, /*seed=*/7);
  for (int i = 0; i < 400; ++i) sample.Add(ClusteredUnit(i));
  ASSERT_TRUE(sample.units().empty());  // History really was dropped.

  const auto diag = ComputeSampleDiagnostics(sample);
  ASSERT_TRUE(diag.ok()) << diag.status().ToString();
  EXPECT_TRUE(diag->from_reservoir);
  EXPECT_EQ(diag->units_used, 64u);
  EXPECT_EQ(diag->units_total, 400u);
  EXPECT_NEAR(diag->n_eff,
              static_cast<double>(sample.num_triples()) / diag->deff, 1e-9);

  // The uniform subsample estimates the same population quantities as the
  // full history: compare against a retention-on run over the identical
  // stream. Means are within a few points; deff agrees in kind (both see
  // strong clustering).
  AnnotatedSample full;
  for (int i = 0; i < 400; ++i) full.Add(ClusteredUnit(i));
  const auto reference = ComputeSampleDiagnostics(full);
  ASSERT_TRUE(reference.ok());
  EXPECT_NEAR(diag->unit_mean, reference->unit_mean, 0.1);
  EXPECT_GT(diag->deff, 1.0);
  EXPECT_GT(reference->deff, 1.0);
}

TEST(SampleDiagnosticsTest, RetentionOffWithoutReservoirIsAnExplicitError) {
  AnnotatedSample sample;
  sample.set_retain_units(false);  // No reservoir armed.
  for (int i = 0; i < 10; ++i) sample.Add(ClusteredUnit(i));
  const auto diag = ComputeSampleDiagnostics(sample);
  ASSERT_FALSE(diag.ok());
  EXPECT_EQ(diag.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SampleDiagnosticsTest, FewerThanTwoUnitsIsAnExplicitError) {
  AnnotatedSample empty;
  EXPECT_FALSE(ComputeSampleDiagnostics(empty).ok());

  AnnotatedSample one;
  one.Add(ClusteredUnit(0));
  const auto diag = ComputeSampleDiagnostics(one);
  ASSERT_FALSE(diag.ok());
  EXPECT_EQ(diag.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SampleDiagnosticsTest, ZeroDrawnUnitsAreSkippedNotCounted) {
  AnnotatedSample sample;
  sample.Add(ClusteredUnit(0));
  sample.Add(ClusteredUnit(1));
  AnnotatedUnit hollow;
  hollow.drawn = 0;
  sample.Add(hollow);
  const auto diag = ComputeSampleDiagnostics(sample);
  ASSERT_TRUE(diag.ok()) << diag.status().ToString();
  EXPECT_EQ(diag->units_used, 2u);
  EXPECT_EQ(diag->units_total, 3u);
}

}  // namespace
}  // namespace kgacc
