// Steady-state allocation accounting for the evaluation hot loop. The flat
// SampleBatch plus the streaming estimator contract promise that once a
// session's buffers have grown to the workload's footprint, Step() performs
// ZERO heap allocations — not "few", none. This test overrides the global
// allocator to count, warms a session past every growth (batch buffers,
// distinct-set saturation on a small population), then demands silence.

#include "kgacc/eval/session.h"
#include "kgacc/kg/synthetic.h"
#include "kgacc/sampling/cluster.h"
#include "kgacc/sampling/srs.h"
#include "kgacc/util/alloc_counter.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

SyntheticKg SmallKg() {
  SyntheticKgConfig cfg;
  cfg.num_clusters = 120;  // ~360 triples: distinct sets saturate quickly.
  cfg.mean_cluster_size = 3.0;
  cfg.accuracy = 0.9;
  cfg.seed = 5;
  return *SyntheticKg::Create(cfg);
}

/// A stop rule that never fires inside the test horizon.
EvaluationConfig NeverConvergingConfig() {
  EvaluationConfig config;
  config.method = IntervalMethod::kWald;  // Closed form: no solver state.
  config.moe_threshold = 1e-12;
  config.max_triples = 1u << 30;
  config.retain_unit_history = false;  // O(1) sample memory.
  return config;
}

/// Steps until the distinct-triple set stops growing (with-replacement
/// designs re-draw old triples from then on), then a tail of extra steps so
/// amortized growth — FlatSet migration debt, vector doublings — finishes.
void WarmUp(EvaluationSession& session, const KgView& kg) {
  uint64_t plateau = 0;
  while (session.sample().num_distinct_triples() < kg.num_triples() &&
         plateau < 400) {
    ASSERT_TRUE(session.Step().ok());
    ++plateau;
  }
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(session.Step().ok());
  }
  ASSERT_FALSE(session.done());
}

TEST(SessionAllocationTest, SrsSteadyStateStepsAllocateNothing) {
  const auto kg = SmallKg();
  OracleAnnotator annotator;
  SrsSampler sampler(kg, SrsConfig{.batch_size = 50});
  SessionScratch scratch;
  EvaluationSession session(sampler, annotator, NeverConvergingConfig(), 99,
                            &scratch);
  WarmUp(session, kg);

  const uint64_t before = alloc_counter::Current();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(session.Step().ok());
  }
  const uint64_t after = alloc_counter::Current();
  EXPECT_EQ(after - before, 0u)
      << "steady-state SRS steps performed heap allocations";
}

TEST(SessionAllocationTest, TwcsSteadyStateStepsAllocateNothing) {
  const auto kg = SmallKg();
  OracleAnnotator annotator;
  TwcsSampler sampler(kg, TwcsConfig{.batch_clusters = 16,
                                     .second_stage_size = 3});
  SessionScratch scratch;
  EvaluationSession session(sampler, annotator, NeverConvergingConfig(), 17,
                            &scratch);
  WarmUp(session, kg);

  const uint64_t before = alloc_counter::Current();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(session.Step().ok());
  }
  const uint64_t after = alloc_counter::Current();
  EXPECT_EQ(after - before, 0u)
      << "steady-state TWCS steps performed heap allocations";
}

TEST(SessionAllocationTest, HpdSteadyStateStepsAllocateNothing) {
  // The zero-allocation contract now reaches past kWald into the interval
  // layer: a warm kHpd step runs the 2x2 Newton KKT solver through its
  // templated (non-type-erased) entry point, so the whole
  // draw-annotate-estimate-interval cycle is silent. This is what the
  // SolveNewtonKkt2 callable templating bought.
  const auto kg = SmallKg();
  OracleAnnotator annotator;
  SrsSampler sampler(kg, SrsConfig{.batch_size = 50});
  EvaluationConfig config = NeverConvergingConfig();
  config.method = IntervalMethod::kHpd;
  SessionScratch scratch;
  EvaluationSession session(sampler, annotator, config, 23, &scratch);
  WarmUp(session, kg);

  const uint64_t before = alloc_counter::Current();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(session.Step().ok());
  }
  const uint64_t after = alloc_counter::Current();
  EXPECT_EQ(after - before, 0u)
      << "steady-state kHpd steps performed heap allocations";
}

TEST(SessionAllocationTest, ScratchReuseAcrossSessionsAllocatesNothing) {
  // A worker context running many jobs on one scratch: after the first few
  // sessions every buffer is warm, so constructing and running a whole new
  // session on the same population must stay allocation-free (sampler reuse
  // included — this is the EvaluationService per-context protocol).
  const auto kg = SmallKg();
  OracleAnnotator annotator;
  SrsSampler sampler(kg, SrsConfig{.batch_size = 50});
  EvaluationConfig config = NeverConvergingConfig();
  config.max_triples = 2000;  // Small bounded audits.
  config.priors.clear();  // Unused by Wald; keeps the config copy alloc-free.

  SessionScratch scratch;
  for (uint64_t job = 0; job < 3; ++job) {  // Warm the scratch.
    EvaluationSession session(sampler, annotator, config, 1000 + job,
                              &scratch);
    ASSERT_TRUE(session.Run().ok());
  }
  const uint64_t before = alloc_counter::Current();
  for (uint64_t job = 0; job < 5; ++job) {
    EvaluationSession session(sampler, annotator, config, 2000 + job,
                              &scratch);
    ASSERT_TRUE(session.Run().ok());
  }
  const uint64_t after = alloc_counter::Current();
  EXPECT_EQ(after - before, 0u)
      << "warm-scratch session construction or Run() allocated";
}

}  // namespace
}  // namespace kgacc
