#include "kgacc/eval/report.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

EvaluationResult MakeResult() {
  EvaluationResult result;
  result.mu = 0.871;
  result.interval = Interval{0.82, 0.918};
  result.annotated_triples = 246;
  result.distinct_triples = 240;
  result.distinct_entities = 88;
  result.iterations = 29;
  result.cost_seconds = 10260.0;
  result.cost_hours = 2.85;
  result.converged = true;
  result.stop_reason = StopReason::kConverged;
  result.winning_prior = 0;
  result.deff = 1.37;
  return result;
}

TEST(TextReportTest, ContainsTheHeadlineNumbers) {
  ReportContext context{.dataset_name = "demo-kg", .design_name = "TWCS"};
  EvaluationConfig config;  // aHPD.
  const std::string report = RenderTextReport(context, config, MakeResult());
  EXPECT_NE(report.find("demo-kg"), std::string::npos);
  EXPECT_NE(report.find("aHPD"), std::string::npos);
  EXPECT_NE(report.find("TWCS"), std::string::npos);
  EXPECT_NE(report.find("0.8710"), std::string::npos);
  EXPECT_NE(report.find("[0.8200, 0.9180]"), std::string::npos);
  EXPECT_NE(report.find("Kerman"), std::string::npos);
  EXPECT_NE(report.find("converged"), std::string::npos);
  EXPECT_NE(report.find("design effect"), std::string::npos);
}

TEST(TextReportTest, CredibleVsConfidenceWording) {
  ReportContext context;
  EvaluationConfig bayes;
  bayes.method = IntervalMethod::kAhpd;
  EXPECT_NE(RenderTextReport(context, bayes, MakeResult())
                .find("credible interval"),
            std::string::npos);
  EvaluationConfig freq;
  freq.method = IntervalMethod::kWilson;
  EXPECT_NE(RenderTextReport(context, freq, MakeResult())
                .find("confidence interval"),
            std::string::npos);
}

TEST(TextReportTest, OmitsDesignEffectWhenUnity) {
  ReportContext context;
  EvaluationConfig config;
  EvaluationResult result = MakeResult();
  result.deff = 1.0;
  EXPECT_EQ(RenderTextReport(context, config, result).find("design effect"),
            std::string::npos);
}

TEST(JsonReportTest, WellFormedAndComplete) {
  ReportContext context{.dataset_name = "demo-kg", .design_name = "TWCS"};
  EvaluationConfig config;
  const std::string json = RenderJsonReport(context, config, MakeResult());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  for (const char* key :
       {"\"dataset\":", "\"design\":", "\"method\":", "\"alpha\":",
        "\"mu\":", "\"lower\":", "\"upper\":", "\"moe\":",
        "\"annotated_triples\":246", "\"distinct_entities\":88",
        "\"cost_hours\":", "\"converged\":true",
        "\"stop_reason\":\"converged\"", "\"winning_prior\":\"Kerman\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST(JsonReportTest, EscapesSpecialCharacters) {
  ReportContext context;
  context.dataset_name = "a\"b\\c\nd";
  EvaluationConfig config;
  const std::string json = RenderJsonReport(context, config, MakeResult());
  EXPECT_NE(json.find("a\\\"b\\\\c\\nd"), std::string::npos);
}

TEST(JsonReportTest, NonAhpdOmitsWinningPrior) {
  ReportContext context;
  EvaluationConfig config;
  config.method = IntervalMethod::kWilson;
  const std::string json = RenderJsonReport(context, config, MakeResult());
  EXPECT_EQ(json.find("winning_prior"), std::string::npos);
}

}  // namespace
}  // namespace kgacc
