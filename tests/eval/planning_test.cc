#include "kgacc/eval/planning.h"

#include "kgacc/intervals/frequentist.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

TEST(WilsonPlanningTest, ReturnsTheExactThreshold) {
  const auto n = *WilsonRequiredSampleSize(0.85, 0.05, 0.05);
  // The returned n satisfies the budget; n - 1 must not.
  EXPECT_LE((*WilsonInterval(0.85, static_cast<double>(n), 0.05)).Moe(),
            0.05);
  EXPECT_GT(
      (*WilsonInterval(0.85, static_cast<double>(n - 1), 0.05)).Moe(), 0.05);
}

TEST(WilsonPlanningTest, CentralAccuracyNeedsTheMostSamples) {
  const auto central = *WilsonRequiredSampleSize(0.5, 0.05, 0.05);
  const auto skewed = *WilsonRequiredSampleSize(0.9, 0.05, 0.05);
  const auto extreme = *WilsonRequiredSampleSize(0.99, 0.05, 0.05);
  EXPECT_GT(central, skewed);
  EXPECT_GT(skewed, extreme);
  // Classic planning numbers: ~385 at mu=0.5 for a +-5% Wilson interval.
  EXPECT_NEAR(static_cast<double>(central), 385.0, 10.0);
}

TEST(WilsonPlanningTest, TighterBudgetsNeedMoreSamples) {
  EXPECT_GT(*WilsonRequiredSampleSize(0.8, 0.05, 0.02),
            *WilsonRequiredSampleSize(0.8, 0.05, 0.05));
  EXPECT_GT(*WilsonRequiredSampleSize(0.8, 0.01, 0.05),
            *WilsonRequiredSampleSize(0.8, 0.05, 0.05));
}

TEST(WilsonPlanningTest, RejectsBadArguments) {
  EXPECT_FALSE(WilsonRequiredSampleSize(1.5, 0.05, 0.05).ok());
  EXPECT_FALSE(WilsonRequiredSampleSize(0.8, 0.0, 0.05).ok());
  EXPECT_FALSE(WilsonRequiredSampleSize(0.8, 0.05, 0.0).ok());
  EXPECT_FALSE(WilsonRequiredSampleSize(0.8, 0.05, 0.6).ok());
}

TEST(AhpdPlanningTest, BeatsWilsonOnSkewedAccuracy) {
  // The planning forecast reproduces Table 3's ordering.
  const auto priors = DefaultUninformativePriors();
  for (const double mu : {0.9, 0.95, 0.99}) {
    const auto ahpd = *AhpdRequiredSampleSize(priors, mu, 0.05, 0.05);
    const auto wilson = *WilsonRequiredSampleSize(mu, 0.05, 0.05);
    EXPECT_LE(ahpd, wilson) << mu;
  }
}

TEST(AhpdPlanningTest, MatchesWilsonAtTheCenter) {
  const auto priors = DefaultUninformativePriors();
  const auto ahpd = *AhpdRequiredSampleSize(priors, 0.5, 0.05, 0.05);
  const auto wilson = *WilsonRequiredSampleSize(0.5, 0.05, 0.05);
  EXPECT_NEAR(static_cast<double>(ahpd), static_cast<double>(wilson), 6.0);
}

TEST(AhpdPlanningTest, ForecastTracksMeasuredStoppingPoints) {
  // Table 2 anchor: HPD at YAGO-like mu=0.99 stops around ~32 triples in
  // measured runs. The pure-interval forecast lands slightly below because
  // the live framework also enforces the n >= 30 floor.
  const auto priors = DefaultUninformativePriors();
  const auto n = *AhpdRequiredSampleSize(priors, 0.99, 0.05, 0.05);
  EXPECT_GE(n, 15u);
  EXPECT_LE(n, 40u);
}

TEST(AhpdPlanningTest, RequiresPriors) {
  EXPECT_FALSE(AhpdRequiredSampleSize({}, 0.8, 0.05, 0.05).ok());
}

TEST(PlanAhpdAuditTest, FreshAuditMatchesRequiredSampleSize) {
  const auto priors = DefaultUninformativePriors();
  const auto plan = *PlanAhpdAudit(priors, 0.85, 0.05, 0.05, 0.0, 0.0);
  const auto direct = *AhpdRequiredSampleSize(priors, 0.85, 0.05, 0.05);
  EXPECT_EQ(plan.total_triples, direct);
  EXPECT_EQ(plan.additional_triples, direct);
  EXPECT_GT(plan.additional_cost_hours, 0.0);
}

TEST(PlanAhpdAuditTest, MidAuditPlansOnlyTheRemainder) {
  const auto priors = DefaultUninformativePriors();
  const auto fresh = *PlanAhpdAudit(priors, 0.85, 0.05, 0.05, 0.0, 0.0);
  const auto resumed =
      *PlanAhpdAudit(priors, 0.85, 0.05, 0.05, /*tau=*/85.0, /*n=*/100.0);
  EXPECT_LT(resumed.additional_triples, fresh.additional_triples);
  EXPECT_GE(resumed.total_triples, 100u);
}

TEST(PlanAhpdAuditTest, EntitySharingCutsProjectedCost) {
  const auto priors = DefaultUninformativePriors();
  const auto srs_like =
      *PlanAhpdAudit(priors, 0.85, 0.05, 0.05, 0, 0, /*entities=*/1.0);
  const auto twcs_like =
      *PlanAhpdAudit(priors, 0.85, 0.05, 0.05, 0, 0, /*entities=*/0.4);
  EXPECT_EQ(srs_like.additional_triples, twcs_like.additional_triples);
  EXPECT_LT(twcs_like.additional_cost_hours, srs_like.additional_cost_hours);
}

TEST(PlanAhpdAuditTest, RejectsInconsistentState) {
  const auto priors = DefaultUninformativePriors();
  EXPECT_FALSE(PlanAhpdAudit(priors, 0.8, 0.05, 0.05, 50.0, 40.0).ok());
  EXPECT_FALSE(
      PlanAhpdAudit(priors, 0.8, 0.05, 0.05, 0, 0, /*entities=*/0.0).ok());
  EXPECT_FALSE(
      PlanAhpdAudit(priors, 0.8, 0.05, 0.05, 0, 0, /*entities=*/1.5).ok());
}

}  // namespace
}  // namespace kgacc
