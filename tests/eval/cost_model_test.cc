#include "kgacc/eval/cost_model.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

TEST(CostModelTest, PaperDefaultsAre45And25Seconds) {
  const CostModel model;
  EXPECT_DOUBLE_EQ(model.entity_identification_seconds, 45.0);
  EXPECT_DOUBLE_EQ(model.fact_verification_seconds, 25.0);
  EXPECT_EQ(model.annotators_per_triple, 1);
}

TEST(CostModelTest, Eq12HandComputation) {
  // |E_S| = 2 entities, |T_S| = 5 triples: 2*45 + 5*25 = 215 s.
  AnnotatedSample sample;
  sample.MarkAnnotated(TripleRef{0, 0});
  sample.MarkAnnotated(TripleRef{0, 1});
  sample.MarkAnnotated(TripleRef{0, 2});
  sample.MarkAnnotated(TripleRef{1, 0});
  sample.MarkAnnotated(TripleRef{1, 1});
  const CostModel model;
  EXPECT_DOUBLE_EQ(AnnotationCostSeconds(model, sample), 215.0);
  EXPECT_DOUBLE_EQ(AnnotationCostHours(model, sample), 215.0 / 3600.0);
}

TEST(CostModelTest, RepeatedTriplesCostOnce) {
  AnnotatedSample sample;
  sample.MarkAnnotated(TripleRef{0, 0});
  sample.MarkAnnotated(TripleRef{0, 0});
  sample.MarkAnnotated(TripleRef{0, 0});
  EXPECT_DOUBLE_EQ(AnnotationCostSeconds(CostModel{}, sample), 45.0 + 25.0);
}

TEST(CostModelTest, EntityIdentificationAmortizedWithinCluster) {
  // Cluster sampling economics: 4 triples of one entity cost 45 + 4*25,
  // while 4 SRS triples of distinct entities cost 4*(45+25).
  AnnotatedSample clustered;
  for (uint64_t o = 0; o < 4; ++o) clustered.MarkAnnotated(TripleRef{7, o});
  AnnotatedSample scattered;
  for (uint64_t c = 0; c < 4; ++c) scattered.MarkAnnotated(TripleRef{c, 0});
  EXPECT_DOUBLE_EQ(AnnotationCostSeconds(CostModel{}, clustered), 145.0);
  EXPECT_DOUBLE_EQ(AnnotationCostSeconds(CostModel{}, scattered), 280.0);
}

TEST(CostModelTest, MultiAnnotatorMultipliesVerificationOnly) {
  AnnotatedSample sample;
  sample.MarkAnnotated(TripleRef{0, 0});
  CostModel model;
  model.annotators_per_triple = 3;
  EXPECT_DOUBLE_EQ(AnnotationCostSeconds(model, sample), 45.0 + 3 * 25.0);
}

TEST(CostModelTest, CustomRatesAreApplied) {
  AnnotatedSample sample;
  sample.MarkAnnotated(TripleRef{0, 0});
  sample.MarkAnnotated(TripleRef{1, 0});
  CostModel model;
  model.entity_identification_seconds = 10.0;
  model.fact_verification_seconds = 1.0;
  EXPECT_DOUBLE_EQ(AnnotationCostSeconds(model, sample), 22.0);
}

TEST(CostModelTest, EmptySampleCostsNothing) {
  EXPECT_DOUBLE_EQ(AnnotationCostSeconds(CostModel{}, AnnotatedSample{}), 0.0);
}

}  // namespace
}  // namespace kgacc
