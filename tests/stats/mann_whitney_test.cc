#include "kgacc/stats/mann_whitney.h"

#include "kgacc/util/random.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

TEST(MannWhitneyTest, HandComputedUStatistic) {
  // xs = {1, 3, 5}, ys = {2, 4}: ranks of xs are 1, 3, 5 -> R = 9;
  // U = 9 - 3*4/2 = 3.
  const auto r = *MannWhitneyUTest({1, 3, 5}, {2, 4});
  EXPECT_DOUBLE_EQ(r.u, 3.0);
}

TEST(MannWhitneyTest, IdenticalDistributionsGiveHighP) {
  const auto r = *MannWhitneyUTest({1, 2, 3, 4, 5}, {1, 2, 3, 4, 5});
  EXPECT_GT(r.p_two_sided, 0.9);
  EXPECT_FALSE(r.SignificantAt(0.05));
}

TEST(MannWhitneyTest, CompleteSeparationIsSignificant) {
  std::vector<double> lo, hi;
  for (int i = 0; i < 30; ++i) {
    lo.push_back(i);
    hi.push_back(100 + i);
  }
  const auto r = *MannWhitneyUTest(lo, hi);
  EXPECT_LT(r.p_two_sided, 1e-8);
  EXPECT_TRUE(r.SignificantAt(0.01));
}

TEST(MannWhitneyTest, AllTiedValuesGivePOne) {
  const auto r = *MannWhitneyUTest({5, 5, 5}, {5, 5, 5, 5});
  EXPECT_DOUBLE_EQ(r.p_two_sided, 1.0);
  EXPECT_DOUBLE_EQ(r.z, 0.0);
}

TEST(MannWhitneyTest, SymmetricInArguments) {
  const std::vector<double> a = {1, 4, 6, 9, 12};
  const std::vector<double> b = {2, 3, 7, 8, 15};
  const auto ab = *MannWhitneyUTest(a, b);
  const auto ba = *MannWhitneyUTest(b, a);
  EXPECT_NEAR(ab.p_two_sided, ba.p_two_sided, 1e-12);
  EXPECT_NEAR(ab.z, -ba.z, 1e-12);
}

TEST(MannWhitneyTest, TiesAreHandledViaMidRanks) {
  // Heavily tied integer data (like annotation counts).
  const std::vector<double> x = {30, 30, 40, 40, 40, 50};
  const std::vector<double> y = {40, 40, 50, 50, 60, 60};
  const auto r = MannWhitneyUTest(x, y);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->p_two_sided, 0.0);
  EXPECT_LT(r->p_two_sided, 1.0);
}

TEST(MannWhitneyTest, RequiresTwoObservationsEach) {
  EXPECT_FALSE(MannWhitneyUTest({1.0}, {1.0, 2.0}).ok());
  EXPECT_FALSE(MannWhitneyUTest({1.0, 2.0}, {}).ok());
}

TEST(MannWhitneyTest, FalsePositiveRateNearNominal) {
  Rng rng(99);
  int fp = 0;
  const int trials = 1500;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> xs(25), ys(25);
    for (int i = 0; i < 25; ++i) {
      xs[i] = rng.Normal();
      ys[i] = rng.Normal();
    }
    if ((*MannWhitneyUTest(xs, ys)).SignificantAt(0.05)) ++fp;
  }
  EXPECT_NEAR(fp / static_cast<double>(trials), 0.05, 0.02);
}

TEST(MannWhitneyTest, AgreesWithTTestDirectionOnShiftedData) {
  Rng rng(7);
  std::vector<double> xs(40), ys(40);
  for (int i = 0; i < 40; ++i) {
    xs[i] = rng.Normal();
    ys[i] = rng.Normal() + 1.0;
  }
  const auto r = *MannWhitneyUTest(xs, ys);
  EXPECT_LT(r.z, 0.0);  // xs stochastically smaller.
  EXPECT_TRUE(r.SignificantAt(0.01));
}

}  // namespace
}  // namespace kgacc
