#include "kgacc/stats/replication.h"

#include "kgacc/kg/synthetic.h"
#include "kgacc/sampling/srs.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

SyntheticKg MakeKg(double accuracy) {
  SyntheticKgConfig cfg;
  cfg.num_clusters = 2000;
  cfg.mean_cluster_size = 3.0;
  cfg.accuracy = accuracy;
  cfg.seed = 555;
  return *SyntheticKg::Create(cfg);
}

TEST(RunReplicationsTest, AggregatesAllRuns) {
  const auto kg = MakeKg(0.9);
  SrsSampler sampler(kg, SrsConfig{});
  OracleAnnotator annotator;
  EvaluationConfig config;
  const auto summary = *RunReplications(sampler, annotator, config, 50, 1000);
  EXPECT_EQ(summary.triples.size(), 50u);
  EXPECT_EQ(summary.cost_hours.size(), 50u);
  EXPECT_EQ(summary.mu.size(), 50u);
  EXPECT_EQ(summary.triples_summary.n, 50u);
  EXPECT_EQ(summary.unconverged, 0);
  EXPECT_NEAR(summary.mu_summary.mean, 0.9, 0.05);
  EXPECT_GE(summary.triples_summary.min, 30.0);
}

TEST(RunReplicationsTest, DeterministicAcrossCalls) {
  const auto kg = MakeKg(0.9);
  SrsSampler sampler(kg, SrsConfig{});
  OracleAnnotator annotator;
  EvaluationConfig config;
  const auto a = *RunReplications(sampler, annotator, config, 20, 42);
  const auto b = *RunReplications(sampler, annotator, config, 20, 42);
  EXPECT_EQ(a.triples, b.triples);
  EXPECT_EQ(a.cost_hours, b.cost_hours);
}

TEST(RunReplicationsTest, SeedsAreConsecutive) {
  // Replication r of a batch equals a solo run with seed base + r.
  const auto kg = MakeKg(0.9);
  SrsSampler sampler(kg, SrsConfig{});
  OracleAnnotator annotator;
  EvaluationConfig config;
  const auto batch = *RunReplications(sampler, annotator, config, 5, 100);
  const auto solo = *RunEvaluation(sampler, annotator, config, 103);
  EXPECT_DOUBLE_EQ(batch.triples[3],
                   static_cast<double>(solo.annotated_triples));
}

TEST(RunReplicationsTest, CountsZeroWidthRuns) {
  const auto kg = MakeKg(1.0);  // All correct: Wald collapses every run.
  SrsSampler sampler(kg, SrsConfig{});
  OracleAnnotator annotator;
  EvaluationConfig config;
  config.method = IntervalMethod::kWald;
  const auto summary = *RunReplications(sampler, annotator, config, 20, 7);
  EXPECT_EQ(summary.zero_width, 20);
}

TEST(RunReplicationsTest, TracksPriorWins) {
  const auto kg = MakeKg(0.99);
  SrsSampler sampler(kg, SrsConfig{});
  OracleAnnotator annotator;
  EvaluationConfig config;  // aHPD by default.
  const auto summary = *RunReplications(sampler, annotator, config, 30, 9);
  int total_wins = 0;
  for (int w : summary.prior_wins) total_wins += w;
  EXPECT_EQ(total_wins, 30);
  // At mu = 0.99 Kerman (index 0) should dominate.
  EXPECT_GT(summary.prior_wins[0], 15);
}

TEST(RunReplicationsTest, RejectsZeroReps) {
  const auto kg = MakeKg(0.9);
  SrsSampler sampler(kg, SrsConfig{});
  OracleAnnotator annotator;
  EXPECT_FALSE(RunReplications(sampler, annotator, {}, 0, 1).ok());
}

}  // namespace
}  // namespace kgacc
