#include "kgacc/stats/bootstrap.h"

#include <cmath>

#include "kgacc/stats/descriptive.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

std::vector<double> NormalSample(double mean, double sd, int n,
                                 uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(n);
  for (int i = 0; i < n; ++i) xs[i] = mean + sd * rng.Normal();
  return xs;
}

double MeanStat(const std::vector<double>& xs) { return *Mean(xs); }

TEST(BootstrapIntervalTest, CoversTheSampleMean) {
  const auto xs = NormalSample(10.0, 2.0, 200, 1);
  const auto ci = *BootstrapInterval(xs, MeanStat);
  const double m = *Mean(xs);
  EXPECT_TRUE(ci.Contains(m));
  // Width should be around 2 * 1.96 * sd/sqrt(n) ~ 0.55.
  EXPECT_GT(ci.Width(), 0.3);
  EXPECT_LT(ci.Width(), 0.9);
}

TEST(BootstrapIntervalTest, DeterministicForFixedSeed) {
  const auto xs = NormalSample(0.0, 1.0, 50, 2);
  const auto a = *BootstrapInterval(xs, MeanStat);
  const auto b = *BootstrapInterval(xs, MeanStat);
  EXPECT_DOUBLE_EQ(a.lower, b.lower);
  EXPECT_DOUBLE_EQ(a.upper, b.upper);
}

TEST(BootstrapIntervalTest, ConfidenceControlsWidth) {
  const auto xs = NormalSample(5.0, 1.0, 100, 3);
  BootstrapOptions narrow;
  narrow.confidence = 0.80;
  BootstrapOptions wide;
  wide.confidence = 0.99;
  EXPECT_LT((*BootstrapInterval(xs, MeanStat, narrow)).Width(),
            (*BootstrapInterval(xs, MeanStat, wide)).Width());
}

TEST(BootstrapIntervalTest, WorksForNonMeanStatistics) {
  const auto xs = NormalSample(0.0, 3.0, 150, 4);
  const auto sd_stat = [](const std::vector<double>& s) {
    return std::sqrt(*SampleVariance(s));
  };
  const auto ci = *BootstrapInterval(xs, sd_stat);
  // The interval centers on the *sample* statistic; containment of the
  // population value holds only at the 95% rate, so assert the former.
  EXPECT_TRUE(ci.Contains(sd_stat(xs)));
  EXPECT_NEAR(0.5 * (ci.lower + ci.upper), 3.0, 0.5);
}

TEST(BootstrapIntervalTest, RejectsBadInputs) {
  EXPECT_FALSE(BootstrapInterval({1.0}, MeanStat).ok());
  const auto xs = NormalSample(0, 1, 20, 5);
  EXPECT_FALSE(BootstrapInterval(xs, nullptr).ok());
  BootstrapOptions bad;
  bad.resamples = 3;
  EXPECT_FALSE(BootstrapInterval(xs, MeanStat, bad).ok());
  bad = BootstrapOptions{};
  bad.confidence = 1.0;
  EXPECT_FALSE(BootstrapInterval(xs, MeanStat, bad).ok());
}

TEST(BootstrapRatioOfMeansTest, CoversTheTrueRatio) {
  // mean(x)/mean(y) = 6/8 = 0.75 up to noise.
  const auto x = NormalSample(6.0, 0.5, 300, 6);
  const auto y = NormalSample(8.0, 0.5, 300, 7);
  const auto ci = *BootstrapRatioOfMeans(x, y);
  EXPECT_TRUE(ci.Contains(0.75));
  EXPECT_LT(ci.Width(), 0.1);
}

TEST(BootstrapRatioOfMeansTest, DetectsRealReductions) {
  // A 20% cost reduction: the 95% interval should exclude 1.0.
  const auto cheap = NormalSample(0.8, 0.1, 200, 8);
  const auto dear = NormalSample(1.0, 0.1, 200, 9);
  const auto ci = *BootstrapRatioOfMeans(cheap, dear);
  EXPECT_LT(ci.upper, 1.0);
}

TEST(BootstrapRatioOfMeansTest, RejectsZeroMeanDenominator) {
  const std::vector<double> zero = {1.0, -1.0, 1.0, -1.0};
  const auto x = NormalSample(1.0, 0.1, 20, 10);
  EXPECT_FALSE(BootstrapRatioOfMeans(x, zero).ok());
}

TEST(BootstrapMeanDifferenceTest, NullDifferenceCoversZero) {
  const auto x = NormalSample(3.0, 1.0, 150, 11);
  const auto y = NormalSample(3.0, 1.0, 150, 12);
  const auto ci = *BootstrapMeanDifference(x, y);
  EXPECT_TRUE(ci.Contains(0.0));
}

TEST(BootstrapMeanDifferenceTest, RealDifferenceExcludesZero) {
  const auto x = NormalSample(3.0, 0.5, 150, 13);
  const auto y = NormalSample(4.0, 0.5, 150, 14);
  const auto ci = *BootstrapMeanDifference(x, y);
  EXPECT_LT(ci.upper, 0.0);
  EXPECT_TRUE(ci.Contains(-1.0));
}

}  // namespace
}  // namespace kgacc
