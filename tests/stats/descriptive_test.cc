#include "kgacc/stats/descriptive.h"

#include <cmath>

#include <gtest/gtest.h>

namespace kgacc {
namespace {

TEST(MeanTest, SimpleValues) {
  EXPECT_DOUBLE_EQ(*Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(*Mean({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(*Mean({-1.0, 1.0}), 0.0);
}

TEST(MeanTest, EmptyIsError) { EXPECT_FALSE(Mean({}).ok()); }

TEST(SampleVarianceTest, KnownValue) {
  // Var of {2, 4, 4, 4, 5, 5, 7, 9} with n-1 denominator is 32/7.
  EXPECT_NEAR(*SampleVariance({2, 4, 4, 4, 5, 5, 7, 9}), 32.0 / 7.0, 1e-12);
}

TEST(SampleVarianceTest, ConstantSampleIsZero) {
  EXPECT_DOUBLE_EQ(*SampleVariance({3.0, 3.0, 3.0}), 0.0);
}

TEST(SampleVarianceTest, NeedsTwoValues) {
  EXPECT_FALSE(SampleVariance({1.0}).ok());
  EXPECT_FALSE(SampleVariance({}).ok());
}

TEST(SummarizeTest, AllFieldsPopulated) {
  const auto s = *Summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.n, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(SummarizeTest, SingletonHasZeroStddev) {
  const auto s = *Summarize({7.0});
  EXPECT_EQ(s.n, 1u);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 7.0);
  EXPECT_DOUBLE_EQ(s.max, 7.0);
}

TEST(SummarizeTest, EmptyIsError) { EXPECT_FALSE(Summarize({}).ok()); }

}  // namespace
}  // namespace kgacc
