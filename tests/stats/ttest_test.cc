#include "kgacc/stats/ttest.h"

#include <cmath>

#include "kgacc/util/random.h"

#include <gtest/gtest.h>

namespace kgacc {
namespace {

TEST(PooledTTestTest, HandComputedStatistic) {
  // xs = {1..5}, ys = {2..6}: means 3 and 4, both variances 2.5.
  // Pooled SE = sqrt(2.5 * (1/5 + 1/5)) = 1, so t = -1, df = 8.
  const auto r = *PooledTTest({1, 2, 3, 4, 5}, {2, 3, 4, 5, 6});
  EXPECT_NEAR(r.t, -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(r.df, 8.0);
  EXPECT_GT(r.p_two_sided, 0.3);
  EXPECT_LT(r.p_two_sided, 0.4);
}

TEST(PooledTTestTest, IdenticalSamplesGivePOne) {
  const auto r = *PooledTTest({1, 2, 3}, {3, 2, 1});
  EXPECT_NEAR(r.t, 0.0, 1e-12);
  EXPECT_NEAR(r.p_two_sided, 1.0, 1e-12);
  EXPECT_FALSE(r.SignificantAt(0.01));
}

TEST(PooledTTestTest, ClearlySeparatedSamplesAreSignificant) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(10.0 + 0.1 * (i % 5));
    ys.push_back(20.0 + 0.1 * (i % 5));
  }
  const auto r = *PooledTTest(xs, ys);
  EXPECT_LT(r.p_two_sided, 1e-10);
  EXPECT_TRUE(r.SignificantAt(0.01));
}

TEST(PooledTTestTest, DegenerateZeroVarianceSamples) {
  const auto same = *PooledTTest({5, 5, 5}, {5, 5, 5});
  EXPECT_DOUBLE_EQ(same.p_two_sided, 1.0);
  const auto different = *PooledTTest({5, 5, 5}, {6, 6, 6});
  EXPECT_DOUBLE_EQ(different.p_two_sided, 0.0);
}

TEST(PooledTTestTest, RequiresTwoObservationsEach) {
  EXPECT_FALSE(PooledTTest({1.0}, {1.0, 2.0}).ok());
  EXPECT_FALSE(PooledTTest({1.0, 2.0}, {}).ok());
}

TEST(WelchTTestTest, MatchesPooledForEqualVariances) {
  const auto pooled = *PooledTTest({1, 2, 3, 4, 5}, {2, 3, 4, 5, 6});
  const auto welch = *WelchTTest({1, 2, 3, 4, 5}, {2, 3, 4, 5, 6});
  EXPECT_NEAR(welch.t, pooled.t, 1e-12);
  EXPECT_NEAR(welch.df, pooled.df, 1e-9);  // Equal n, equal var -> same df.
  EXPECT_NEAR(welch.p_two_sided, pooled.p_two_sided, 1e-9);
}

TEST(WelchTTestTest, UnequalVariancesReduceDf) {
  const std::vector<double> tight = {10.0, 10.1, 9.9, 10.05, 9.95};
  const std::vector<double> loose = {5.0, 15.0, 8.0, 13.0, 9.0};
  const auto r = *WelchTTest(tight, loose);
  EXPECT_LT(r.df, 8.0);  // Satterthwaite df below the pooled n1+n2-2.
  EXPECT_GT(r.df, 3.0);
}

TEST(WelchTTestTest, SymmetricInArgumentsUpToSign) {
  const std::vector<double> xs = {1, 3, 5, 7};
  const std::vector<double> ys = {2, 4, 6, 9};
  const auto ab = *WelchTTest(xs, ys);
  const auto ba = *WelchTTest(ys, xs);
  EXPECT_NEAR(ab.t, -ba.t, 1e-12);
  EXPECT_NEAR(ab.p_two_sided, ba.p_two_sided, 1e-12);
}

TEST(TTestCalibrationTest, FalsePositiveRateMatchesAlpha) {
  // Under the null (same distribution), p < 0.05 should fire ~5% of the
  // time. This is the property the paper's significance marks rely on.
  Rng rng(2024);
  int fp = 0;
  const int trials = 2000;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<double> xs(20), ys(20);
    for (int i = 0; i < 20; ++i) {
      xs[i] = rng.Normal();
      ys[i] = rng.Normal();
    }
    if ((*PooledTTest(xs, ys)).SignificantAt(0.05)) ++fp;
  }
  EXPECT_NEAR(fp / static_cast<double>(trials), 0.05, 0.015);
}

}  // namespace
}  // namespace kgacc
