// Ablation D: sensitivity of the iterative framework to the batch size of
// phase 1. Small batches stop closest to the ideal sample size (fewest
// wasted annotations past the MoE crossing) but re-estimate more often;
// large batches overshoot. This quantifies the framework-level overhead
// that the interval method cannot see.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace kgacc;
  const int reps = bench::Reps();
  const uint64_t seed = bench::BaseSeed();
  OracleAnnotator annotator;

  std::printf("Ablation D: batch-size sensitivity (aHPD, SRS, alpha=0.05, "
              "%d reps)\n", reps);
  bench::Rule(86);
  std::printf("%6s %14s %14s %14s %14s\n", "batch", "YAGO", "NELL", "DBPEDIA",
              "FACTBENCH");
  bench::Rule(86);
  for (const int batch : {1, 5, 10, 20, 50}) {
    std::printf("%6d", batch);
    for (const DatasetProfile& profile : SmallProfiles()) {
      const auto kg = *MakeKg(profile, seed);
      SrsSampler sampler(kg, SrsConfig{.batch_size = batch});
      EvaluationConfig config;
      const auto summary =
          *RunReplications(sampler, annotator, config, reps, seed + 61);
      std::printf(" %14s", bench::MeanStd(summary.triples_summary, 0).c_str());
    }
    std::printf("\n");
  }
  bench::Rule(86);

  std::printf("\nTWCS first-stage batch (clusters per iteration, m=3):\n");
  bench::Rule(86);
  for (const int batch : {1, 3, 5, 10}) {
    std::printf("%6d", batch);
    for (const DatasetProfile& profile : SmallProfiles()) {
      const auto kg = *MakeKg(profile, seed);
      TwcsSampler sampler(kg, TwcsConfig{.batch_clusters = batch,
                                         .second_stage_size = 3});
      EvaluationConfig config;
      const auto summary =
          *RunReplications(sampler, annotator, config, reps, seed + 62);
      std::printf(" %14s", bench::MeanStd(summary.triples_summary, 0).c_str());
    }
    std::printf("\n");
  }
  bench::Rule(86);
  std::printf("Expected shape: mean annotations grow mildly with batch size "
              "(overshoot), while\nthe winner ordering across datasets is "
              "batch-size invariant.\n");
  return 0;
}
