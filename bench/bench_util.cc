#include "bench_util.h"

#include <cstdio>
#include <cstdlib>

namespace kgacc::bench {

int Reps(int fallback) {
  if (const char* env = std::getenv("KGACC_REPS")) {
    const int reps = std::atoi(env);
    if (reps > 0) return reps;
  }
  return fallback;
}

uint64_t BaseSeed() {
  if (const char* env = std::getenv("KGACC_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 20250226;  // The paper's arXiv date, for want of a better ritual.
}

int Threads() {
  if (const char* env = std::getenv("KGACC_THREADS")) {
    const int threads = std::atoi(env);
    if (threads > 0) return threads;
  }
  return 0;  // EvaluationService resolves 0 to the hardware concurrency.
}

EvaluationService& SharedService() {
  static EvaluationService service(
      EvaluationService::Options{.num_threads = Threads()});
  return service;
}

std::string MeanStd(const SampleSummary& s, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f±%.*f", precision, s.mean, precision,
                s.stddev);
  return buf;
}

ReplicationSummary RunConfig(const KgView& kg, const BenchConfig& config,
                             int reps, uint64_t seed) {
  OracleAnnotator annotator;
  EvaluationConfig eval;
  eval.method = config.method;
  eval.alpha = config.alpha;
  eval.moe_threshold = config.epsilon;
  eval.priors = config.priors;
  if (config.twcs) {
    TwcsSampler sampler(kg, TwcsConfig{.second_stage_size = config.twcs_m});
    return *RunReplicationsParallel(SharedService(), sampler, annotator, eval,
                                    reps, seed);
  }
  SrsSampler sampler(kg, SrsConfig{});
  return *RunReplicationsParallel(SharedService(), sampler, annotator, eval,
                                  reps, seed);
}

std::string SignificanceMarks(const ReplicationSummary& ahpd,
                              const ReplicationSummary& wald,
                              const ReplicationSummary& wilson) {
  std::string marks;
  const auto vs_wald = PooledTTest(ahpd.cost_hours, wald.cost_hours);
  if (vs_wald.ok() && vs_wald->SignificantAt(0.01)) marks += "†";
  const auto vs_wilson = PooledTTest(ahpd.cost_hours, wilson.cost_hours);
  if (vs_wilson.ok() && vs_wilson->SignificantAt(0.01)) marks += "‡";
  return marks.empty() ? "" : marks;
}

void Rule(int n) {
  for (int i = 0; i < n; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace kgacc::bench
