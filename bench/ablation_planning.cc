// Ablation E: forecast accuracy of the planning module. For each dataset
// the pre-audit forecast (`AhpdRequiredSampleSize` at the true accuracy)
// is compared with the measured mean stopping point of live runs. A good
// planner lands within the framework's batch-size granularity.

#include <cstdio>

#include "bench_util.h"

#include "kgacc/eval/planning.h"

int main() {
  using namespace kgacc;
  const int reps = bench::Reps();
  const uint64_t seed = bench::BaseSeed();
  const auto priors = DefaultUninformativePriors();

  std::printf("Ablation E: planner forecast vs measured stopping points "
              "(aHPD, SRS, %d reps)\n", reps);
  bench::Rule(84);
  std::printf("%-11s %10s %12s %14s %10s\n", "Dataset", "mu", "forecast",
              "measured", "error");
  bench::Rule(84);
  for (const DatasetProfile& profile : SmallProfiles()) {
    const auto kg = *MakeKg(profile, seed);
    const auto forecast =
        *AhpdRequiredSampleSize(priors, kg.TrueAccuracy(), 0.05, 0.05);
    bench::BenchConfig config;  // aHPD, SRS.
    const auto measured = bench::RunConfig(kg, config, reps, seed + 71);
    const double error = measured.triples_summary.mean -
                         static_cast<double>(forecast);
    std::printf("%-11s %10.2f %12llu %14s %+10.1f\n", profile.name.c_str(),
                kg.TrueAccuracy(), static_cast<unsigned long long>(forecast),
                bench::MeanStd(measured.triples_summary, 0).c_str(), error);
  }
  bench::Rule(84);
  std::printf("The live framework stops at the first batch boundary past "
              "the forecast and\nenforces n >= 30, so measured means sit a "
              "few triples above the forecast.\n");

  std::printf("\nWilson planning cross-check (closed form):\n");
  for (const double mu : {0.5, 0.85, 0.95, 0.99}) {
    std::printf("  mu=%.2f  Wilson n=%llu  aHPD n=%llu\n", mu,
                static_cast<unsigned long long>(
                    *WilsonRequiredSampleSize(mu, 0.05, 0.05)),
                static_cast<unsigned long long>(
                    *AhpdRequiredSampleSize(priors, mu, 0.05, 0.05)));
  }
  return 0;
}
