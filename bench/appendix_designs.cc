// Online-appendix experiment: the additional sampling designs beyond SRS
// and TWCS — systematic (SYS), stratified (SSRS), single-stage weighted
// cluster (WCS) and uniform cluster (RCS) sampling — compared on the four
// small datasets with aHPD interval estimation. The paper's main-text
// recommendation (TWCS) should emerge as the cheapest reliable design on
// skewed real-life KGs.

#include <cstdio>
#include <functional>
#include <memory>

#include "bench_util.h"

int main() {
  using namespace kgacc;
  const int reps = bench::Reps();
  const uint64_t seed = bench::BaseSeed();
  const auto profiles = SmallProfiles();

  struct Design {
    const char* name;
    std::function<std::unique_ptr<Sampler>(const KgView&)> make;
  };
  const Design designs[] = {
      {"SRS",
       [](const KgView& kg) {
         return std::make_unique<SrsSampler>(kg, SrsConfig{});
       }},
      {"SYS",
       [](const KgView& kg) {
         return std::make_unique<SystematicSampler>(kg, SystematicConfig{});
       }},
      {"SSRS",
       [](const KgView& kg) {
         return std::make_unique<StratifiedSampler>(kg, StratifiedConfig{});
       }},
      {"TWCS",
       [](const KgView& kg) {
         return std::make_unique<TwcsSampler>(
             kg, TwcsConfig{.second_stage_size = 3});
       }},
      {"WCS",
       [](const KgView& kg) {
         return std::make_unique<WcsSampler>(kg, ClusterConfig{});
       }},
      {"RCS",
       [](const KgView& kg) {
         return std::make_unique<RcsSampler>(kg, ClusterConfig{});
       }},
  };

  std::printf("Appendix: additional sampling designs under aHPD "
              "(alpha=0.05, eps=0.05, %d reps)\n", reps);
  bench::Rule(112);
  std::printf("%-7s", "Design");
  for (const DatasetProfile& profile : profiles) {
    std::printf(" %12s %12s", (profile.name + " trp").c_str(), "cost(h)");
  }
  std::printf("\n");
  bench::Rule(112);

  OracleAnnotator annotator;
  for (const Design& design : designs) {
    std::printf("%-7s", design.name);
    for (const DatasetProfile& profile : profiles) {
      const auto kg = *MakeKg(profile, seed);
      auto sampler = design.make(kg);
      EvaluationConfig config;  // aHPD defaults.
      const auto summary =
          *RunReplications(*sampler, annotator, config, reps, seed + 51);
      std::printf(" %12s %12s",
                  bench::MeanStd(summary.triples_summary, 0).c_str(),
                  bench::MeanStd(summary.cost_summary, 2).c_str());
    }
    std::printf("\n");
  }
  bench::Rule(112);
  std::printf("Expected shape: per-triple designs (SRS/SYS/SSRS) need the "
              "fewest triples but pay\nfull entity-identification cost; "
              "cluster designs trade extra triples for lower cost,\nwith "
              "TWCS's capped second stage beating whole-cluster WCS/RCS.\n");
  return 0;
}
