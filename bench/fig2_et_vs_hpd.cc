// Reproduces Figure 2: ET vs HPD credible intervals on three posteriors of
// increasing skewness. The paper's qualitative claims, regenerated as
// numbers: (a) symmetric -> identical intervals; (b)/(c) skewed -> the ET
// interval is longer and covers a low-density region whose probability mass
// is well below the HPD mass it excludes (the <75% and <20% CDF ratios
// quoted in §4.2).

#include <algorithm>
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace kgacc;
  struct Scenario {
    const char* label;
    double a, b;
  };
  const Scenario scenarios[] = {
      {"(a) symmetric", 15.0, 15.0},
      {"(b) moderately skewed", 25.0, 6.0},
      {"(c) highly skewed", 45.0, 2.0},
  };
  const double alpha = 0.05;

  std::printf("Figure 2: ET vs HPD credible intervals across posterior skewness\n");
  bench::Rule(96);
  std::printf("%-24s %-22s %-22s %9s %9s %8s\n", "Posterior", "ET interval",
              "HPD interval", "ET width", "HPD width", "ratio");
  bench::Rule(96);

  for (const Scenario& s : scenarios) {
    const auto d = *BetaDistribution::Create(s.a, s.b);
    const auto et = *EqualTailedInterval(d, alpha);
    const auto hpd = *HpdInterval(d, alpha);
    char et_str[32], hpd_str[32];
    std::snprintf(et_str, sizeof(et_str), "[%.4f, %.4f]", et.lower, et.upper);
    std::snprintf(hpd_str, sizeof(hpd_str), "[%.4f, %.4f]",
                  hpd.interval.lower, hpd.interval.upper);
    std::printf("%-24s %-22s %-22s %9.4f %9.4f %8.3f\n", s.label, et_str,
                hpd_str, et.Width(), hpd.interval.Width(),
                et.Width() / hpd.interval.Width());
  }
  bench::Rule(96);

  // CDF-ratio analysis of §4.2: mass of the HPD region that ET excludes vs
  // mass of the equally wide non-HPD region that ET covers instead.
  std::printf("\nCDF ratio analysis (mass ET covers outside HPD / HPD mass ET"
              " excludes):\n");
  for (const Scenario& s : scenarios) {
    const auto d = *BetaDistribution::Create(s.a, s.b);
    const auto et = *EqualTailedInterval(d, alpha);
    const auto hpd = *HpdInterval(d, alpha);
    // For these right-skewed posteriors the HPD sits right of the ET: the
    // ET excludes the HPD slice [et.upper, hpd.upper] and instead covers
    // the equally wide non-HPD slice [et.lower, et.lower + excluded width].
    const double excluded_lo = std::max(et.upper, hpd.interval.lower);
    const double excluded_hi = hpd.interval.upper;
    if (excluded_hi <= excluded_lo) {
      std::printf("  %-24s no HPD mass excluded (intervals coincide)\n",
                  s.label);
      continue;
    }
    const double width = excluded_hi - excluded_lo;
    const double excluded_mass = d.Cdf(excluded_hi) - d.Cdf(excluded_lo);
    const double covered_mass =
        d.Cdf(et.lower + width) - d.Cdf(et.lower);
    std::printf("  %-24s excluded HPD mass=%.5f, covered non-HPD mass=%.5f,"
                " ratio=%.1f%%\n",
                s.label, excluded_mass, covered_mass,
                100.0 * covered_mass / excluded_mass);
  }
  std::printf("\nPaper reference: ratio < 75%% in (b), < 20%% in (c); "
              "ET == HPD in (a).\n");

  // Downstream consequence of the interval choice: run ET and HPD as the
  // stopping rule of the full iterative framework on a skewed (NELL-like)
  // population — one EvaluationService batch per method, so both columns
  // come from a single parallel pass over all repetitions.
  const int reps = bench::Reps(200);
  const uint64_t seed = bench::BaseSeed();
  const auto kg = *MakeKg(NellProfile(), seed);
  OracleAnnotator annotator;
  SrsSampler sampler(kg, SrsConfig{});
  std::printf("\nAs stopping rules on a NELL-like KG (mu=%.2f, %d reps, "
              "%d service threads):\n", kg.TrueAccuracy(), reps,
              bench::SharedService().num_threads());
  std::printf("%-8s %12s %14s %10s\n", "Method", "triples", "cost(h)",
              "zero-w");
  for (const IntervalMethod method :
       {IntervalMethod::kEqualTailed, IntervalMethod::kHpd}) {
    EvaluationConfig config;
    config.method = method;
    const auto summary = *RunReplicationsParallel(
        bench::SharedService(), sampler, annotator, config, reps, seed + 2);
    std::printf("%-8s %12s %14s %10d\n", IntervalMethodName(method),
                bench::MeanStd(summary.triples_summary, 0).c_str(),
                bench::MeanStd(summary.cost_summary, 2).c_str(),
                summary.zero_width);
  }
  std::printf("The HPD rule stops at (weakly) fewer annotations: its "
              "interval is never wider than ET.\n");
  return 0;
}
