// Reproduces Table 2: annotated triples to convergence for ET and HPD CrIs
// under Kerman / Jeffreys / Uniform priors, plus aHPD over the trio, with
// SRS on the four small datasets (alpha = 0.05, epsilon = 0.05, mean±std
// over KGACC_REPS repetitions, default 1,000).

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace kgacc;
  const int reps = bench::Reps();
  const uint64_t seed = bench::BaseSeed();
  const auto profiles = SmallProfiles();
  const auto priors = DefaultUninformativePriors();

  std::printf("Table 2: ET/HPD/aHPD triples to convergence under SRS "
              "(%d reps)\n", reps);
  bench::Rule(86);
  std::printf("%-9s %-9s %14s %14s %14s %14s\n", "Interval", "Prior", "YAGO",
              "NELL", "DBPEDIA", "FACTBENCH");
  bench::Rule(86);

  auto print_row = [&](const char* interval, const char* prior_name,
                       const bench::BenchConfig& config) {
    std::printf("%-9s %-9s", interval, prior_name);
    for (const DatasetProfile& profile : profiles) {
      const auto kg = *MakeKg(profile, seed);
      const auto summary = bench::RunConfig(kg, config, reps, seed + 1);
      std::printf(" %14s", bench::MeanStd(summary.triples_summary, 0).c_str());
    }
    std::printf("\n");
  };

  for (const BetaPrior& prior : priors) {
    bench::BenchConfig config;
    config.method = IntervalMethod::kEqualTailed;
    config.priors = {prior};
    print_row("ET", prior.name.c_str(), config);
  }
  bench::Rule(86);
  for (const BetaPrior& prior : priors) {
    bench::BenchConfig config;
    config.method = IntervalMethod::kHpd;
    config.priors = {prior};
    print_row("HPD", prior.name.c_str(), config);
  }
  bench::Rule(86);
  {
    bench::BenchConfig config;
    config.method = IntervalMethod::kAhpd;
    print_row("aHPD", "{K,J,U}", config);
  }
  bench::Rule(86);
  std::printf("Paper reference (HPD row, SRS): YAGO 32±5 (Kerman), NELL "
              "96±44 (Kerman),\nDBPEDIA 182±42 (Kerman), FACTBENCH 378±3 "
              "(Uniform); aHPD matches the per-region winner.\n");
  return 0;
}
