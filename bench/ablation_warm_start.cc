// Ablation B: value of the ET warm start for the SLSQP HPD solve (Alg. 1
// line 20). Compares SQP iteration counts and wall time between warm
// (ET-interval) and cold (mode±0.25) initialization.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "kgacc/kgacc.h"

namespace {

using namespace kgacc;

void BM_HpdWarmStart(benchmark::State& state) {
  const auto d = *BetaDistribution::Create(
      static_cast<double>(state.range(0)), static_cast<double>(state.range(1)));
  HpdOptions options;
  options.warm_start_at_et = true;
  int64_t total_iters = 0;
  int64_t calls = 0;
  for (auto _ : state) {
    const auto hpd = *HpdInterval(d, 0.05, options);
    total_iters += hpd.solver_iterations;
    ++calls;
    benchmark::DoNotOptimize(hpd);
  }
  state.counters["sqp_iters"] =
      static_cast<double>(total_iters) / static_cast<double>(calls);
}
BENCHMARK(BM_HpdWarmStart)
    ->Args({28, 4})
    ->Args({96, 11})
    ->Args({205, 177});

void BM_HpdColdStart(benchmark::State& state) {
  const auto d = *BetaDistribution::Create(
      static_cast<double>(state.range(0)), static_cast<double>(state.range(1)));
  HpdOptions options;
  options.warm_start_at_et = false;
  int64_t total_iters = 0;
  int64_t calls = 0;
  for (auto _ : state) {
    const auto hpd = *HpdInterval(d, 0.05, options);
    total_iters += hpd.solver_iterations;
    ++calls;
    benchmark::DoNotOptimize(hpd);
  }
  state.counters["sqp_iters"] =
      static_cast<double>(total_iters) / static_cast<double>(calls);
}
BENCHMARK(BM_HpdColdStart)
    ->Args({28, 4})
    ->Args({96, 11})
    ->Args({205, 177});

}  // namespace

BENCHMARK_MAIN();
