// Reproduces Table 4: scalability on the SYN 100M population (101,415,011
// procedurally labeled triples over 5M clusters) with accuracy levels
// mu in {0.9, 0.5, 0.1}, under SRS and TWCS (m = 5). The claim to verify:
// convergence effort is independent of population size — the numbers stay
// in the same range as the small datasets of Table 3.

#include <cstdio>
#include <memory>

#include "bench_util.h"

int main() {
  using namespace kgacc;
  const int reps = bench::Reps();
  const uint64_t seed = bench::BaseSeed();
  const double mus[] = {0.9, 0.5, 0.1};

  std::printf("Table 4: scalability on SYN 100M (alpha=0.05, eps=0.05, "
              "%d reps)\n", reps);

  // Materialize the three populations once (cluster-size prefix arrays).
  std::vector<std::unique_ptr<SyntheticKg>> kgs;
  for (const double mu : mus) {
    kgs.push_back(
        std::make_unique<SyntheticKg>(*MakeKg(Syn100MProfile(mu), seed)));
  }

  for (const bool twcs : {false, true}) {
    std::printf("\n[%s]\n", twcs ? "TWCS, m=5" : "SRS");
    bench::Rule(92);
    std::printf("%-10s", "Interval");
    for (const double mu : mus) {
      char head[32];
      std::snprintf(head, sizeof(head), "mu=%.1f trp", mu);
      std::printf(" %13s %12s", head, "cost(h)");
    }
    std::printf("\n");
    bench::Rule(92);

    std::vector<ReplicationSummary> wald_s, wilson_s, ahpd_s;
    for (size_t i = 0; i < kgs.size(); ++i) {
      bench::BenchConfig config;
      config.twcs = twcs;
      config.twcs_m = 5;
      config.method = IntervalMethod::kWald;
      wald_s.push_back(bench::RunConfig(*kgs[i], config, reps, seed + 21));
      config.method = IntervalMethod::kWilson;
      wilson_s.push_back(bench::RunConfig(*kgs[i], config, reps, seed + 22));
      config.method = IntervalMethod::kAhpd;
      ahpd_s.push_back(bench::RunConfig(*kgs[i], config, reps, seed + 23));
    }

    auto print_method = [&](const char* name,
                            const std::vector<ReplicationSummary>& rows,
                            bool is_ahpd) {
      std::printf("%-10s", name);
      for (size_t i = 0; i < rows.size(); ++i) {
        std::string cost = bench::MeanStd(rows[i].cost_summary, 2);
        if (is_ahpd) {
          cost += bench::SignificanceMarks(rows[i], wald_s[i], wilson_s[i]);
        }
        std::printf(" %13s %12s",
                    bench::MeanStd(rows[i].triples_summary, 0).c_str(),
                    cost.c_str());
      }
      std::printf("\n");
    };
    print_method("Wald", wald_s, false);
    print_method("Wilson", wilson_s, false);
    print_method("aHPD", ahpd_s, true);
    bench::Rule(92);
  }
  std::printf("\nPaper reference (SRS): aHPD 114±46/2.22, 380±1/7.39, "
              "117±45/2.28;\n(TWCS): aHPD 106±52/1.01, 374±65/3.54, "
              "108±54/1.02. Effort matches the small-scale\nresults of "
              "Table 3 — population size does not matter; mu=0.9 and mu=0.1 "
              "cost the same.\n");
  return 0;
}
