// Reproduces Table 1: statistics for YAGO, NELL, DBPEDIA, FACTBENCH and
// SYN 100M. Values are measured on the instantiated synthetic populations,
// so fact counts, cluster counts and mean cluster sizes must match the
// paper's numbers exactly and accuracies within sampling noise.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace kgacc;
  const uint64_t seed = bench::BaseSeed();

  std::printf("Table 1: dataset statistics (measured on generated populations)\n");
  bench::Rule(78);
  std::printf("%-12s %14s %14s %18s %10s\n", "Dataset", "Num. facts",
              "Num. clusters", "Avg. cluster size", "Accuracy");
  bench::Rule(78);

  for (const DatasetProfile& profile : SmallProfiles()) {
    const auto kg = *MakeKg(profile, seed);
    std::printf("%-12s %14llu %14llu %18.2f %10.2f\n", profile.name.c_str(),
                static_cast<unsigned long long>(kg.num_triples()),
                static_cast<unsigned long long>(kg.num_clusters()),
                static_cast<double>(kg.num_triples()) / kg.num_clusters(),
                kg.TrueAccuracy());
  }
  for (const double mu : {0.9, 0.5, 0.1}) {
    const auto profile = Syn100MProfile(mu);
    const auto kg = *MakeKg(profile, seed);
    char name[32];
    std::snprintf(name, sizeof(name), "SYN 100M(%.1f)", mu);
    std::printf("%-12s %14llu %14llu %18.2f %10.2f\n", name,
                static_cast<unsigned long long>(kg.num_triples()),
                static_cast<unsigned long long>(kg.num_clusters()),
                static_cast<double>(kg.num_triples()) / kg.num_clusters(),
                kg.TrueAccuracy());
  }
  bench::Rule(78);
  std::printf("Paper reference: 1386/822/1.69/0.99, 1860/817/2.28/0.91,\n"
              "9344/2936/3.18/0.85, 2800/1157/2.42/0.54, "
              "101415011/5000000/20.28/{0.9,0.5,0.1}\n");
  return 0;
}
