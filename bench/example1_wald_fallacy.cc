// Reproduces Example 1 (§3.3): an analyst audits NELL (mu = 0.91) with SRS,
// the Wald interval, alpha = 0.05 and epsilon = 0.05. In a fraction of runs
// the first admissible sample (n = 30) is all-correct, the estimated
// variance is zero, and the procedure halts with the degenerate CI
// [1.00, 1.00] — the zero-width interval behind the three CI fallacies.
// The paper observed this in 7% of 1,000 iterations.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace kgacc;
  const int reps = bench::Reps();
  const uint64_t seed = bench::BaseSeed();
  const auto kg = *MakeKg(NellProfile(), seed);

  OracleAnnotator annotator;
  EvaluationConfig config;
  config.method = IntervalMethod::kWald;
  SrsSampler sampler(kg, SrsConfig{});

  int zero_width = 0;
  int halted_at_30 = 0;
  EvaluationResult example;
  bool have_example = false;
  for (int r = 0; r < reps; ++r) {
    const auto result = *RunEvaluation(sampler, annotator, config, seed + r);
    if (result.interval.Width() == 0.0) {
      ++zero_width;
      if (!have_example) {
        example = result;
        have_example = true;
      }
    }
    if (result.annotated_triples == 30) ++halted_at_30;
  }

  std::printf("Example 1: Wald zero-width fallacy on NELL (mu=%.2f, "
              "%d reps)\n", kg.TrueAccuracy(), reps);
  bench::Rule(72);
  std::printf("Runs halting with a zero-width CI: %d / %d (%.1f%%)\n",
              zero_width, reps, 100.0 * zero_width / reps);
  std::printf("Runs halting at the minimum n=30:  %d / %d (%.1f%%)\n",
              halted_at_30, reps, 100.0 * halted_at_30 / reps);
  if (have_example) {
    std::printf("\nA concrete degenerate run: n=%llu, mu_hat=%.2f, "
                "CI=[%.2f, %.2f], MoE=%.2f\n",
                static_cast<unsigned long long>(example.annotated_triples),
                example.mu, example.interval.lower, example.interval.upper,
                example.interval.Moe());
    std::printf("Fallacy 1: the CI claims certainty, so 1-alpha confidence "
                "cannot apply to it.\n"
                "Fallacy 2: zero width does not mean mu is known with "
                "perfect precision.\n"
                "Fallacy 3: the interval excludes every plausible accuracy "
                "value but 1.0.\n");
  }
  bench::Rule(72);
  std::printf("Paper reference: 7%% of 1,000 iterations halt at n=30 with "
              "CI=[1.00, 1.00].\n");
  return 0;
}
