// Reproduces Example 2 (§4.5): an analyst audits DBPEDIA (mu = 0.85) under
// TWCS knowing two similar KGs have accuracies 0.80 and 0.90. Feeding the
// informative priors Beta(80, 20) and Beta(90, 10) to aHPD converges far
// faster than the uninformative Kerman/Jeffreys/Uniform trio. The paper
// reports 63±36 triples / 0.72±0.41 h vs 222±83 triples / 2.55±0.95 h.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace kgacc;
  const int reps = bench::Reps();
  const uint64_t seed = bench::BaseSeed();
  const auto kg = *MakeKg(DbpediaProfile(), seed);

  bench::BenchConfig informative;
  informative.twcs = true;
  informative.priors = {*InformativePrior(0.80, 100.0, "Beta(80,20)"),
                        *InformativePrior(0.90, 100.0, "Beta(90,10)")};
  const auto inf = bench::RunConfig(kg, informative, reps, seed + 41);

  bench::BenchConfig uninformative;
  uninformative.twcs = true;
  const auto uninf = bench::RunConfig(kg, uninformative, reps, seed + 41);

  std::printf("Example 2: aHPD with informative priors on DBPEDIA "
              "(TWCS m=3, %d reps)\n", reps);
  bench::Rule(76);
  std::printf("%-36s %14s %14s\n", "Prior set", "Triples", "Cost (h)");
  bench::Rule(76);
  std::printf("%-36s %14s %14s\n", "{Beta(80,20), Beta(90,10)}",
              bench::MeanStd(inf.triples_summary, 0).c_str(),
              bench::MeanStd(inf.cost_summary, 2).c_str());
  std::printf("%-36s %14s %14s\n", "{Kerman, Jeffreys, Uniform}",
              bench::MeanStd(uninf.triples_summary, 0).c_str(),
              bench::MeanStd(uninf.cost_summary, 2).c_str());
  bench::Rule(76);
  std::printf("Speedup: %.1fx fewer triples, %.1fx lower cost\n",
              uninf.triples_summary.mean / inf.triples_summary.mean,
              uninf.cost_summary.mean / inf.cost_summary.mean);
  std::printf("Paper reference: 63±36 triples / 0.72±0.41 h with informative "
              "priors vs\n222±83 / 2.55±0.95 with the uninformative trio.\n");
  return 0;
}
