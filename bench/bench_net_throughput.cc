// Networked-audit throughput: an in-process `AuditDaemon` on loopback,
// hammered by concurrent `AuditClient` threads running full audits end to
// end (open -> step batches -> interval updates -> final report). Reports
// audits/sec and annotation steps/sec for the cold-audit phase, report
// replays/sec for the finished-audit reopen path (the resume fast path:
// zero oracle calls, one round trip), and a chaos cell with the
// `net.read.torn` failpoint armed to price reconnect-and-resume under a
// lossy transport, and a two-tenant fairness window on a single-worker
// daemon whose served-step split CI gates against the 3:1 DRR weights
// (`check_perf_regression.py --net-fresh`). Emits BENCH_net.json; the
// throughput rows are informational — the byte-identity and
// crash-tolerance *contracts* are gated by tests/net/daemon_test.cc and
// the CI daemon stage — but the fairness row is a machine-independent
// ratio and is gated.
//
// Knobs: KGACC_NET_CLIENTS (default 4), KGACC_NET_AUDITS per client
// (default 6), KGACC_NET_FAIRNESS_SECONDS (default 2), KGACC_SEED.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "kgacc/net/client.h"
#include "kgacc/net/server.h"
#include "kgacc/tenant/tenant.h"
#include "kgacc/util/failpoint.h"

#include "bench_util.h"

namespace {

using namespace kgacc;

int EnvInt(const char* name, int fallback) {
  if (const char* env = std::getenv(name)) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return fallback;
}

KnowledgeGraph BenchKg() {
  KnowledgeGraphBuilder builder;
  for (int s = 0; s < 400; ++s) {
    const int facts = 1 + (s * 7 + 3) % 6;
    for (int o = 0; o < facts; ++o) {
      const bool correct = (s * 31 + o * 17) % 10 != 0;
      builder.Add("s" + std::to_string(s), "p" + std::to_string(o % 4),
                  "o" + std::to_string(s * 10 + o), correct);
    }
  }
  return *builder.Build();
}

struct Phase {
  uint64_t audits = 0;
  uint64_t steps = 0;
  uint64_t reconnects = 0;
  uint64_t busy_retries = 0;
  double seconds = 0.0;
};

/// Runs `audits_per_client` full audits on each of `clients` threads, ids
/// offset so every audit is distinct. Returns the aggregate.
Phase RunAudits(uint16_t port, int clients, int audits_per_client,
                uint64_t id_base, uint64_t seed) {
  std::vector<Phase> per_thread(clients);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      AuditClientOptions options;
      options.port = port;
      options.batch_steps = 8;
      options.recv_timeout_ms = 2000;
      for (int a = 0; a < audits_per_client; ++a) {
        OpenAuditMsg open;
        open.audit_id =
            id_base + static_cast<uint64_t>(c) * audits_per_client + a;
        open.kg_name = "bench";
        open.seed = seed + open.audit_id;
        open.checkpoint_every = 8;
        AuditClient client(options);
        auto report = client.RunAudit(open);
        if (!report.ok()) {
          std::fprintf(stderr, "audit %llu failed: %s\n",
                       static_cast<unsigned long long>(open.audit_id),
                       report.status().ToString().c_str());
          continue;
        }
        ++per_thread[c].audits;
        per_thread[c].steps += client.stats().updates_received;
        per_thread[c].reconnects += client.stats().reconnects;
        per_thread[c].busy_retries += client.stats().busy_retries;
      }
    });
  }
  for (auto& t : threads) t.join();
  Phase total;
  total.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  for (const Phase& p : per_thread) {
    total.audits += p.audits;
    total.steps += p.steps;
    total.reconnects += p.reconnects;
    total.busy_retries += p.busy_retries;
  }
  return total;
}

}  // namespace

int main() {
  const uint64_t seed = bench::BaseSeed();
  const int clients = EnvInt("KGACC_NET_CLIENTS", 4);
  const int audits_per_client = EnvInt("KGACC_NET_AUDITS", 6);

  const KnowledgeGraph kg = BenchKg();
  const std::string store_dir =
      std::filesystem::temp_directory_path().string() + "/kgacc_bench_net_" +
      std::to_string(::getpid());
  std::filesystem::remove_all(store_dir);
  std::filesystem::create_directories(store_dir);

  AuditDaemon::Options options;
  options.port = 0;
  options.store_dir = store_dir;
  options.checkpoint_every = 8;
  AuditDaemon daemon(options);
  daemon.RegisterKg("bench", &kg);
  const Status started = daemon.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "daemon: %s\n", started.ToString().c_str());
    return 1;
  }

  std::printf("kgaccd network throughput — %d clients x %d audits, %llu "
              "triples\n",
              clients, audits_per_client,
              static_cast<unsigned long long>(kg.num_triples()));
  bench::Rule(72);

  // Phase 1: cold audits, every label paid to the oracle over the wire.
  const Phase cold =
      RunAudits(daemon.port(), clients, audits_per_client, 1000, seed);
  std::printf("cold audits      %6llu audits  %8.1f audits/s  %9.1f steps/s\n",
              static_cast<unsigned long long>(cold.audits),
              cold.audits / cold.seconds, cold.steps / cold.seconds);

  // Phase 2: reopen every finished audit — the report-replay fast path
  // (resume to done, zero oracle calls, one round trip each).
  const Phase replay =
      RunAudits(daemon.port(), clients, audits_per_client, 1000, seed);
  std::printf("report replays   %6llu audits  %8.1f replays/s\n",
              static_cast<unsigned long long>(replay.audits),
              replay.audits / replay.seconds);

  // Phase 3: the same cold workload with a lossy transport — one read in
  // 40 torn. Clients reconnect and resume; nothing fails, it just costs.
  Phase chaos;
  {
    ScopedFailpoints fp("net.read.torn=every:40");
    if (!fp.status().ok()) {
      std::fprintf(stderr, "failpoints: %s\n",
                   fp.status().ToString().c_str());
      return 1;
    }
    chaos = RunAudits(daemon.port(), clients, audits_per_client, 5000, seed);
  }
  std::printf("torn-read chaos  %6llu audits  %8.1f audits/s  %6llu "
              "reconnects\n",
              static_cast<unsigned long long>(chaos.audits),
              chaos.audits / chaos.seconds,
              static_cast<unsigned long long>(chaos.reconnects));
  bench::Rule(72);
  std::printf("daemon: %s\n", daemon.StatsLine().c_str());
  daemon.Stop();

  // Phase 4: weighted fairness under contention. A single-worker daemon with
  // a 3:1 DRR weight split, two tenants looping full audits flat out for a
  // fixed wall-clock window. The served-step share is a property of the
  // scheduler, not the machine, so CI gates |heavy_share - 0.75| via
  // check_perf_regression.py (skipped when the window saw too few audits).
  uint64_t heavy_steps = 0, light_steps = 0, fair_completions = 0;
  double fair_seconds = 0.0;
  {
    const std::string fair_dir = store_dir + "_fair";
    std::filesystem::remove_all(fair_dir);
    std::filesystem::create_directories(fair_dir);
    AuditDaemon::Options fair_options;
    fair_options.port = 0;
    fair_options.store_dir = fair_dir;
    fair_options.checkpoint_every = 8;
    fair_options.workers = 1;  // One lane: contention is the point.
    auto registry = TenantRegistry::Parse("heavy weight=3\nlight weight=1\n");
    if (!registry.ok()) {
      std::fprintf(stderr, "registry: %s\n",
                   registry.status().ToString().c_str());
      return 1;
    }
    fair_options.tenants = *std::move(registry);
    AuditDaemon fair_daemon(fair_options);
    fair_daemon.RegisterKg("bench", &kg);
    const Status fair_started = fair_daemon.Start();
    if (!fair_started.ok()) {
      std::fprintf(stderr, "fair daemon: %s\n",
                   fair_started.ToString().c_str());
      return 1;
    }
    const int window_seconds = EnvInt("KGACC_NET_FAIRNESS_SECONDS", 2);
    // Several sessions per tenant keep each tenant's queue backlogged on
    // the single worker — with one outstanding batch per session the
    // scheduler would never face a choice and the share would measure
    // client round-trips, not DRR weights.
    const int sessions_per_tenant = EnvInt("KGACC_NET_FAIRNESS_SESSIONS", 4);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(window_seconds);
    const auto fair_start = std::chrono::steady_clock::now();
    std::atomic<uint64_t> steps_by_side[2] = {{0}, {0}};
    std::atomic<uint64_t> done_by_side[2] = {{0}, {0}};
    auto spin = [&](const char* tenant, int side, uint64_t id_base) {
      AuditClientOptions copts;
      copts.port = fair_daemon.port();
      copts.tenant = tenant;
      copts.batch_steps = 8;
      copts.recv_timeout_ms = 2000;
      for (uint64_t a = 0; std::chrono::steady_clock::now() < deadline; ++a) {
        OpenAuditMsg open;
        open.audit_id = id_base + a;
        open.kg_name = "bench";
        open.seed = seed + open.audit_id;
        open.checkpoint_every = 8;
        AuditClient client(copts);
        if (!client.RunAudit(open).ok()) continue;
        steps_by_side[side].fetch_add(client.stats().updates_received,
                                      std::memory_order_relaxed);
        done_by_side[side].fetch_add(1, std::memory_order_relaxed);
      }
    };
    std::vector<std::thread> spinners;
    for (int t = 0; t < sessions_per_tenant; ++t) {
      spinners.emplace_back(spin, "heavy", 0,
                            uint64_t{100000} + uint64_t(t) * 10000);
      spinners.emplace_back(spin, "light", 1,
                            uint64_t{200000} + uint64_t(t) * 10000);
    }
    for (auto& t : spinners) t.join();
    heavy_steps = steps_by_side[0].load();
    light_steps = steps_by_side[1].load();
    fair_seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - fair_start)
                       .count();
    fair_completions = done_by_side[0].load() + done_by_side[1].load();
    fair_daemon.Stop();
    std::filesystem::remove_all(fair_dir);
  }
  const uint64_t fair_steps = heavy_steps + light_steps;
  const double heavy_share =
      fair_steps == 0 ? 0.0
                      : static_cast<double>(heavy_steps) /
                            static_cast<double>(fair_steps);
  std::printf("tenant fairness  %6llu audits  heavy share %.3f "
              "(weights 3:1 -> 0.750)\n",
              static_cast<unsigned long long>(fair_completions), heavy_share);
  bench::Rule(72);

  const uint64_t expected =
      static_cast<uint64_t>(clients) * audits_per_client;
  const bool complete = cold.audits == expected &&
                        replay.audits == expected &&
                        chaos.audits == expected;
  if (!complete) std::fprintf(stderr, "some audits failed\n");

  std::FILE* json = std::fopen("BENCH_net.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "[\n"
                 "  {\"bench\": \"net_cold_audits\", \"clients\": %d, "
                 "\"audits\": %llu, \"audits_per_sec\": %.2f, "
                 "\"steps_per_sec\": %.2f},\n",
                 clients, static_cast<unsigned long long>(cold.audits),
                 cold.audits / cold.seconds, cold.steps / cold.seconds);
    std::fprintf(json,
                 "  {\"bench\": \"net_report_replay\", \"clients\": %d, "
                 "\"replays_per_sec\": %.2f},\n",
                 clients, replay.audits / replay.seconds);
    std::fprintf(json,
                 "  {\"bench\": \"net_chaos_torn_read\", \"clients\": %d, "
                 "\"audits_per_sec\": %.2f, \"reconnects\": %llu},\n",
                 clients, chaos.audits / chaos.seconds,
                 static_cast<unsigned long long>(chaos.reconnects));
    std::fprintf(json,
                 "  {\"bench\": \"net_tenant_fairness\", \"heavy_weight\": 3, "
                 "\"light_weight\": 1, \"heavy_share\": %.4f, "
                 "\"expected_share\": 0.75, \"heavy_steps\": %llu, "
                 "\"light_steps\": %llu, \"completions\": %llu, "
                 "\"seconds\": %.2f}\n"
                 "]\n",
                 heavy_share, static_cast<unsigned long long>(heavy_steps),
                 static_cast<unsigned long long>(light_steps),
                 static_cast<unsigned long long>(fair_completions),
                 fair_seconds);
    std::fclose(json);
    std::printf("wrote BENCH_net.json\n");
  }
  std::filesystem::remove_all(store_dir);
  return complete ? 0 : 1;
}
