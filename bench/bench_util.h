#ifndef KGACC_BENCH_BENCH_UTIL_H_
#define KGACC_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "kgacc/kgacc.h"

/// \file bench_util.h
/// Shared plumbing for the experiment harness: replication counts, the
/// mean +- std cells the paper's tables print, and significance marks.

namespace kgacc::bench {

/// Replications per configuration. Defaults to the paper's 1,000; override
/// with the KGACC_REPS environment variable for quicker passes.
int Reps(int fallback = 1000);

/// Base seed for all harness runs; override with KGACC_SEED.
uint64_t BaseSeed();

/// Worker threads for the harness's `EvaluationService`; defaults to the
/// hardware concurrency, override with KGACC_THREADS. Thread count never
/// changes the numbers — only the wall-clock time.
int Threads();

/// The process-wide evaluation service the harness fans repetitions out
/// on (constructed on first use with `Threads()` workers).
EvaluationService& SharedService();

/// "123±45" / "1.23±0.45" formatting used throughout the tables.
std::string MeanStd(const SampleSummary& s, int precision);

/// Runs one (population, design, method) configuration through the full
/// iterative framework `reps` times. Repetitions execute as one parallel
/// `EvaluationService` batch (seed + i per rep), reproducing the serial
/// protocol bit for bit.
struct BenchConfig {
  IntervalMethod method = IntervalMethod::kAhpd;
  double alpha = 0.05;
  double epsilon = 0.05;
  std::vector<BetaPrior> priors = DefaultUninformativePriors();
  bool twcs = false;
  int twcs_m = 3;
};

ReplicationSummary RunConfig(const KgView& kg, const BenchConfig& config,
                             int reps, uint64_t seed);

/// Paper-style significance marks versus aHPD (pooled t-test, p < 0.01):
/// dagger for Wald, double-dagger for Wilson.
std::string SignificanceMarks(const ReplicationSummary& ahpd,
                              const ReplicationSummary& wald,
                              const ReplicationSummary& wilson);

/// Prints a horizontal rule of width `n`.
void Rule(int n);

}  // namespace kgacc::bench

#endif  // KGACC_BENCH_BENCH_UTIL_H_
