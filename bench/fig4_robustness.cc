// Reproduces Figure 4: annotation cost of aHPD vs Wilson across confidence
// levels alpha in {0.10, 0.05, 0.01}, under SRS and TWCS (m = 3), on the
// four small datasets — plus the reduction ratio of aHPD over Wilson that
// the figure annotates (up to -47% on YAGO at alpha = 0.01 under SRS).

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace kgacc;
  const int reps = bench::Reps();
  const uint64_t seed = bench::BaseSeed();
  const auto profiles = SmallProfiles();
  const double alphas[] = {0.10, 0.05, 0.01};

  std::printf("Figure 4: aHPD vs Wilson annotation cost (hours) across "
              "alpha (%d reps)\n", reps);
  std::printf("(repetitions fan out on the EvaluationService: %d worker "
              "threads)\n", bench::SharedService().num_threads());
  for (const bool twcs : {false, true}) {
    std::printf("\n[%s]\n", twcs ? "(b) TWCS, m=3" : "(a) SRS");
    bench::Rule(100);
    std::printf("%-11s %6s %14s %14s %12s\n", "Dataset", "alpha", "Wilson",
                "aHPD", "reduction");
    bench::Rule(100);
    for (const DatasetProfile& profile : profiles) {
      const auto kg = *MakeKg(profile, seed);
      for (const double alpha : alphas) {
        bench::BenchConfig config;
        config.twcs = twcs;
        config.alpha = alpha;
        config.method = IntervalMethod::kWilson;
        const auto wilson = bench::RunConfig(kg, config, reps, seed + 31);
        config.method = IntervalMethod::kAhpd;
        const auto ahpd = bench::RunConfig(kg, config, reps, seed + 32);
        const double reduction =
            100.0 * (1.0 - ahpd.cost_summary.mean / wilson.cost_summary.mean);
        std::printf("%-11s %6.2f %14s %14s %11.0f%%\n", profile.name.c_str(),
                    alpha, bench::MeanStd(wilson.cost_summary, 2).c_str(),
                    bench::MeanStd(ahpd.cost_summary, 2).c_str(), -reduction);
      }
      bench::Rule(100);
    }
  }
  std::printf("\nPaper reference: reductions grow as alpha tightens — YAGO "
              "-8/-21/-47%% (SRS) and\n-1/-11/-39%% (TWCS) at alpha "
              "0.10/0.05/0.01; ~0%% everywhere on FACTBENCH.\n");
  return 0;
}
