// Ablation A: the three HPD solvers — the dedicated 2x2 Newton KKT path
// (the default), the paper's SLSQP formulation, and the independent 1-D
// reduction (u(l) = F^{-1}(F(l) + 1 - alpha) + Brent). Verifies they agree
// to ~1e-5 and compares their throughput with google-benchmark across
// posterior shapes arising in real runs.

#include <cmath>
#include <cstdio>

#include <benchmark/benchmark.h>

#include "kgacc/kgacc.h"

namespace {

using namespace kgacc;

struct Shape {
  double a, b;
};

// Posteriors representative of early / late iterations on the four paper
// datasets (YAGO-like extreme, NELL/DBPEDIA-like skewed, FACTBENCH-like
// central).
const Shape kShapes[] = {
    {31.0, 1.5}, {28.0, 4.0}, {96.0, 11.0}, {155.0, 28.0}, {205.0, 177.0},
};

void BM_HpdNewtonKkt(benchmark::State& state) {
  const Shape shape = kShapes[state.range(0)];
  const auto d = *BetaDistribution::Create(shape.a, shape.b);
  for (auto _ : state) {
    auto hpd = HpdInterval(d, 0.05);  // Default path: 2x2 Newton KKT.
    benchmark::DoNotOptimize(hpd);
  }
  state.SetLabel("Beta(" + std::to_string(shape.a) + "," +
                 std::to_string(shape.b) + ")");
}
BENCHMARK(BM_HpdNewtonKkt)->DenseRange(0, 4);

void BM_HpdSlsqp(benchmark::State& state) {
  const Shape shape = kShapes[state.range(0)];
  const auto d = *BetaDistribution::Create(shape.a, shape.b);
  HpdOptions options;
  options.solver = HpdSolver::kSlsqp;
  options.use_newton = false;  // The pure SQP reference formulation.
  for (auto _ : state) {
    auto hpd = HpdInterval(d, 0.05, options);
    benchmark::DoNotOptimize(hpd);
  }
  state.SetLabel("Beta(" + std::to_string(shape.a) + "," +
                 std::to_string(shape.b) + ")");
}
BENCHMARK(BM_HpdSlsqp)->DenseRange(0, 4);

void BM_HpdOneDim(benchmark::State& state) {
  const Shape shape = kShapes[state.range(0)];
  const auto d = *BetaDistribution::Create(shape.a, shape.b);
  HpdOptions options;
  options.solver = HpdSolver::kOneDim;
  for (auto _ : state) {
    auto hpd = HpdInterval(d, 0.05, options);
    benchmark::DoNotOptimize(hpd);
  }
  state.SetLabel("Beta(" + std::to_string(shape.a) + "," +
                 std::to_string(shape.b) + ")");
}
BENCHMARK(BM_HpdOneDim)->DenseRange(0, 4);

void BM_EqualTailed(benchmark::State& state) {
  const Shape shape = kShapes[state.range(0)];
  const auto d = *BetaDistribution::Create(shape.a, shape.b);
  for (auto _ : state) {
    auto et = EqualTailedInterval(d, 0.05);
    benchmark::DoNotOptimize(et);
  }
}
BENCHMARK(BM_EqualTailed)->DenseRange(0, 4);

}  // namespace

int main(int argc, char** argv) {
  using namespace kgacc;
  // Correctness cross-check before timing: the two solvers must agree.
  std::printf("Ablation A: Newton KKT vs SLSQP vs 1-D reduction agreement "
              "check\n");
  double worst = 0.0;
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const double a = 1.2 + rng.Uniform() * 300.0;
    const double b = 1.2 + rng.Uniform() * 100.0;
    const auto d = *BetaDistribution::Create(a, b);
    HpdOptions sqp_opts;
    sqp_opts.solver = HpdSolver::kSlsqp;
    sqp_opts.use_newton = false;
    HpdOptions oned_opts;
    oned_opts.solver = HpdSolver::kOneDim;
    const auto newton = *HpdInterval(d, 0.05);
    const auto sqp = *HpdInterval(d, 0.05, sqp_opts);
    const auto oned = *HpdInterval(d, 0.05, oned_opts);
    for (const auto* other : {&sqp, &oned}) {
      worst = std::max(
          worst,
          std::max(std::fabs(newton.interval.lower - other->interval.lower),
                   std::fabs(newton.interval.upper - other->interval.upper)));
    }
  }
  std::printf("Worst endpoint disagreement over 200 random posteriors: "
              "%.2e\n\n", worst);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
