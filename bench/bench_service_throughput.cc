// EvaluationService throughput: sweeps worker threads x batch sizes over
// the same mixed audit workload, reports audits/sec, triples/sec, and
// heap allocations per audit, and verifies along the way that the numbers
// coming back are identical at every thread count. Emits BENCH_service.json
// (one machine-readable record per sweep cell) to seed the performance
// trajectory across PRs.
//
// The 32-job cells exist for continuity with the earlier single-cell
// record; the 256- and 2048-job cells are the ones that say anything about
// steady-state throughput (warm worker contexts need same-design jobs to
// amortize over).
//
// Knobs: KGACC_SEED, KGACC_THREADS = max thread count to sweep to
// (default: hardware).

#include <cstdio>
#include <vector>

// Global allocation counter: every operator new in the process ticks it, so
// (delta / audits) is the whole-pipeline allocation cost of one audit.
#include "kgacc/util/alloc_counter.h"

#include "bench_util.h"

int main() {
  using namespace kgacc;
  const uint64_t seed = bench::BaseSeed();

  const auto kg = *MakeKg(NellProfile(), seed);
  OracleAnnotator annotator;
  SrsSampler srs(kg, SrsConfig{});
  TwcsSampler twcs(kg, TwcsConfig{});
  const IntervalMethod methods[] = {
      IntervalMethod::kWald, IntervalMethod::kWilson,
      IntervalMethod::kClopperPearson, IntervalMethod::kAhpd};

  int max_threads = bench::Threads();
  if (max_threads <= 0) {
    // Let the service's own 0-means-hardware resolution decide the ceiling,
    // so the sweep matches what a default-constructed service actually uses.
    max_threads = EvaluationService().num_threads();
  }
  // Always sweep 1/2/4 (oversubscription on small boxes is harmless and
  // still exercises the cross-thread determinism check), plus the full
  // hardware width when it exceeds 4.
  std::vector<int> thread_sweep = {1, 2, 4};
  if (max_threads > 4) thread_sweep.push_back(max_threads);
  const std::vector<int> job_sweep = {32, 256, 2048};

  std::printf("EvaluationService throughput (NELL-like KG, "
              "Wald/Wilson/CP/aHPD x SRS/TWCS, pinned worker contexts)\n");
  bench::Rule(92);
  std::printf("%6s %8s %12s %12s %14s %12s %12s\n", "jobs", "threads",
              "wall(s)", "audits/s", "triples/s", "allocs/audit",
              "evals/solve");
  bench::Rule(92);

  std::FILE* json = std::fopen("BENCH_service.json", "w");
  if (json != nullptr) std::fprintf(json, "[\n");
  bool first_record = true;
  bool deterministic = true;
  // Cross-worker HPD solver counters summed over every sweep cell: the
  // service-level evals-per-solve record the perf gate checks, so solver
  // efficiency is guarded under parallel load too, not just in the
  // single-threaded step bench.
  HpdSolveStats sweep_hpd;

  for (const int jobs_n : job_sweep) {
    // A representative mixed workload: methods x designs x split seeds.
    std::vector<EvaluationJob> jobs;
    jobs.reserve(jobs_n);
    for (int i = 0; i < jobs_n; ++i) {
      EvaluationJob job;
      job.sampler = (i % 2 == 0) ? static_cast<const Sampler*>(&srs)
                                 : static_cast<const Sampler*>(&twcs);
      job.annotator = &annotator;
      job.config.method = methods[(i / 2) % 4];
      job.seed = EvaluationService::DeriveJobSeed(seed, i);
      jobs.push_back(std::move(job));
    }

    uint64_t reference_triples = 0;
    for (size_t s = 0; s < thread_sweep.size(); ++s) {
      EvaluationService service(
          EvaluationService::Options{.num_threads = thread_sweep[s]});
      const uint64_t allocs_before = alloc_counter::Current();
      const EvaluationBatchResult batch = service.RunBatch(jobs);
      const uint64_t allocs = alloc_counter::Current() - allocs_before;
      const ServiceBatchStats& stats = batch.stats;
      if (s == 0) {
        reference_triples = stats.annotated_triples;
      } else if (stats.annotated_triples != reference_triples) {
        deterministic = false;
      }
      const double allocs_per_audit =
          stats.jobs > 0 ? static_cast<double>(allocs) /
                               static_cast<double>(stats.jobs)
                         : 0.0;
      sweep_hpd += stats.hpd;
      const double evals_per_solve =
          stats.hpd.total_solves() > 0
              ? static_cast<double>(stats.hpd.total_beta_evals()) /
                    static_cast<double>(stats.hpd.total_solves())
              : 0.0;
      std::printf("%6d %8d %12.3f %12.1f %14.0f %12.1f %12.1f\n", jobs_n,
                  stats.num_threads, stats.wall_seconds,
                  stats.audits_per_second, stats.triples_per_second,
                  allocs_per_audit, evals_per_solve);
      if (json != nullptr) {
        std::fprintf(json,
                     "%s  {\"bench\": \"service_throughput\", \"jobs\": %d, "
                     "\"threads\": %d, \"wall_seconds\": %.6f, "
                     "\"audits_per_second\": %.2f, "
                     "\"triples_per_second\": %.2f, "
                     "\"annotated_triples\": %llu, "
                     "\"allocations_per_audit\": %.2f, \"failed\": %zu, "
                     "\"hpd_solves\": %llu, \"hpd_newton_solves\": %llu, "
                     "\"hpd_warm_cache_hits\": %llu, "
                     "\"hpd_beta_evals_per_solve\": %.2f}",
                     first_record ? "" : ",\n", jobs_n, stats.num_threads,
                     stats.wall_seconds, stats.audits_per_second,
                     stats.triples_per_second,
                     static_cast<unsigned long long>(stats.annotated_triples),
                     allocs_per_audit, stats.failed,
                     static_cast<unsigned long long>(stats.hpd.total_solves()),
                     static_cast<unsigned long long>(stats.hpd.newton.solves),
                     static_cast<unsigned long long>(
                         stats.hpd.warm_cache_hits),
                     evals_per_solve);
        first_record = false;
      }
    }
  }
  if (json != nullptr) {
    // The machine-independent summary record the perf gate compares: beta
    // evaluations per HPD solve aggregated over the whole sweep (every
    // thread count and batch size), plus the Newton share.
    const double sweep_evals_per_solve =
        sweep_hpd.total_solves() > 0
            ? static_cast<double>(sweep_hpd.total_beta_evals()) /
                  static_cast<double>(sweep_hpd.total_solves())
            : 0.0;
    const double newton_share =
        sweep_hpd.total_solves() > 0
            ? static_cast<double>(sweep_hpd.newton.solves) /
                  static_cast<double>(sweep_hpd.total_solves())
            : 0.0;
    std::fprintf(json,
                 ",\n  {\"bench\": \"service_hpd_summary\", "
                 "\"hpd_solves\": %llu, \"hpd_beta_evals_per_solve\": %.2f, "
                 "\"hpd_newton_share\": %.3f, \"hpd_warm_cache_hits\": %llu}",
                 static_cast<unsigned long long>(sweep_hpd.total_solves()),
                 sweep_evals_per_solve, newton_share,
                 static_cast<unsigned long long>(sweep_hpd.warm_cache_hits));
    std::fprintf(json, "\n]\n");
    std::fclose(json);
  }
  bench::Rule(92);
  std::printf("deterministic across thread counts: %s\n",
              deterministic ? "yes" : "NO — BUG");
  std::printf("wrote BENCH_service.json\n");
  return deterministic ? 0 : 1;
}
