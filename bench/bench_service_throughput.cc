// EvaluationService throughput: runs the same mixed audit batch at 1, 2,
// and N worker threads, reports audits/sec and annotated triples/sec, and
// verifies along the way that the numbers coming back are identical at
// every thread count. Emits BENCH_service.json (one machine-readable record
// per thread count) to seed the performance trajectory across PRs.
//
// Knobs: KGACC_REPS = jobs in the batch (default 128), KGACC_SEED,
// KGACC_THREADS = max thread count to sweep to (default: hardware).

#include <cstdio>
#include <vector>

#include "bench_util.h"

int main() {
  using namespace kgacc;
  const int jobs_n = bench::Reps(128);
  const uint64_t seed = bench::BaseSeed();

  const auto kg = *MakeKg(NellProfile(), seed);
  OracleAnnotator annotator;
  SrsSampler srs(kg, SrsConfig{});
  TwcsSampler twcs(kg, TwcsConfig{});
  const IntervalMethod methods[] = {
      IntervalMethod::kWald, IntervalMethod::kWilson,
      IntervalMethod::kClopperPearson, IntervalMethod::kAhpd};

  // A representative mixed workload: methods x designs x split seeds.
  std::vector<EvaluationJob> jobs;
  jobs.reserve(jobs_n);
  for (int i = 0; i < jobs_n; ++i) {
    EvaluationJob job;
    job.sampler = (i % 2 == 0) ? static_cast<const Sampler*>(&srs)
                               : static_cast<const Sampler*>(&twcs);
    job.annotator = &annotator;
    job.config.method = methods[(i / 2) % 4];
    job.seed = EvaluationService::DeriveJobSeed(seed, i);
    jobs.push_back(std::move(job));
  }

  int max_threads = bench::Threads();
  if (max_threads <= 0) {
    // Let the service's own 0-means-hardware resolution decide the ceiling,
    // so the sweep matches what a default-constructed service actually uses.
    max_threads = EvaluationService().num_threads();
  }
  std::vector<int> sweep = {1};
  if (max_threads >= 2) sweep.push_back(2);
  if (max_threads > 2) sweep.push_back(max_threads);

  std::printf("EvaluationService throughput: %d audits (NELL-like KG, "
              "Wald/Wilson/CP/aHPD x SRS/TWCS)\n", jobs_n);
  bench::Rule(72);
  std::printf("%8s %12s %14s %16s %10s\n", "threads", "wall(s)",
              "audits/s", "triples/s", "speedup");
  bench::Rule(72);

  std::FILE* json = std::fopen("BENCH_service.json", "w");
  if (json != nullptr) std::fprintf(json, "[\n");
  double base_wall = 0.0;
  uint64_t reference_triples = 0;
  bool deterministic = true;
  for (size_t s = 0; s < sweep.size(); ++s) {
    EvaluationService service(
        EvaluationService::Options{.num_threads = sweep[s]});
    const EvaluationBatchResult batch = service.RunBatch(jobs);
    const ServiceBatchStats& stats = batch.stats;
    if (s == 0) {
      base_wall = stats.wall_seconds;
      reference_triples = stats.annotated_triples;
    } else if (stats.annotated_triples != reference_triples) {
      deterministic = false;
    }
    std::printf("%8d %12.3f %14.1f %16.0f %9.2fx\n", stats.num_threads,
                stats.wall_seconds, stats.audits_per_second,
                stats.triples_per_second,
                stats.wall_seconds > 0.0 ? base_wall / stats.wall_seconds
                                         : 0.0);
    if (json != nullptr) {
      std::fprintf(json,
                   "  {\"bench\": \"service_throughput\", \"jobs\": %d, "
                   "\"threads\": %d, \"wall_seconds\": %.6f, "
                   "\"audits_per_second\": %.2f, "
                   "\"triples_per_second\": %.2f, "
                   "\"annotated_triples\": %llu, \"failed\": %zu}%s\n",
                   jobs_n, stats.num_threads, stats.wall_seconds,
                   stats.audits_per_second, stats.triples_per_second,
                   static_cast<unsigned long long>(stats.annotated_triples),
                   stats.failed, s + 1 < sweep.size() ? "," : "");
    }
  }
  if (json != nullptr) {
    std::fprintf(json, "]\n");
    std::fclose(json);
  }
  bench::Rule(72);
  std::printf("deterministic across thread counts: %s\n",
              deterministic ? "yes" : "NO — BUG");
  std::printf("wrote BENCH_service.json\n");
  return deterministic ? 0 : 1;
}
