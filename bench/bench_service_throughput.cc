// EvaluationService throughput: sweeps worker threads x batch sizes over
// the same mixed audit workload, reports audits/sec, triples/sec, heap
// allocations per audit, and the batch timing split
// (spawn/submit/run/barrier + stolen groups), and verifies along the way
// that the numbers coming back are identical at every thread count and
// every repeat. Emits BENCH_service.json (one machine-readable record per
// sweep cell) to seed the performance trajectory across PRs.
//
// Every cell repeats RunBatch on one persistent service until it has
// accumulated at least KGACC_MIN_CELL_MS (default 100 ms) of wall time and
// at least three runs, then reports the *median* run — a single 3 ms run
// is timer noise, and the old single-run protocol also charged pool
// spin-up and cold contexts to every cell. The per-cell record carries the
// run count so the JSON is honest about how much measurement backs it.
//
// The 32-job cells exist for continuity with the earlier single-cell
// record; the 256- and 2048-job cells are the ones that say anything about
// steady-state throughput (warm worker contexts need same-design jobs to
// amortize over). The closing service_thread_scaling record is the
// 4-thread / 1-thread audits/s ratio on the largest cell —
// check_perf_regression.py gates it as a blocking CI check on hosts with
// at least 4 hardware threads.
//
// Knobs: KGACC_SEED, KGACC_THREADS = max thread count to sweep to
// (default: hardware), KGACC_MIN_CELL_MS = minimum measured wall time per
// cell (default 100).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "kgacc/store/checkpoint.h"

// Global allocation counter: every operator new in the process ticks it, so
// (delta / audits) is the whole-pipeline allocation cost of one audit.
#include "kgacc/util/alloc_counter.h"

#include "bench_util.h"

namespace {

double MinCellSeconds() {
  if (const char* env = std::getenv("KGACC_MIN_CELL_MS")) {
    const double ms = std::atof(env);
    if (ms > 0.0) return ms / 1000.0;
  }
  return 0.1;
}

double Median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

}  // namespace

int main() {
  using namespace kgacc;
  const uint64_t seed = bench::BaseSeed();
  const double min_cell_seconds = MinCellSeconds();
  const unsigned hw = std::thread::hardware_concurrency();
  const int hardware_threads = hw > 0 ? static_cast<int>(hw) : 1;

  const auto kg = *MakeKg(NellProfile(), seed);
  OracleAnnotator annotator;
  SrsSampler srs(kg, SrsConfig{});
  TwcsSampler twcs(kg, TwcsConfig{});
  const IntervalMethod methods[] = {
      IntervalMethod::kWald, IntervalMethod::kWilson,
      IntervalMethod::kClopperPearson, IntervalMethod::kAhpd};

  int max_threads = bench::Threads();
  if (max_threads <= 0) {
    // Let the service's own 0-means-hardware resolution decide the ceiling,
    // so the sweep matches what a default-constructed service actually uses.
    max_threads = EvaluationService().num_threads();
  }
  // Always sweep 1/2/4 (oversubscription on small boxes is harmless and
  // still exercises the cross-thread determinism check), plus the full
  // hardware width when it exceeds 4.
  std::vector<int> thread_sweep = {1, 2, 4};
  if (max_threads > 4) thread_sweep.push_back(max_threads);
  const std::vector<int> job_sweep = {32, 256, 2048};

  std::printf("EvaluationService throughput (NELL-like KG, "
              "Wald/Wilson/CP/aHPD x SRS/TWCS, shard-per-core)\n");
  std::printf("cells run until >= %.0f ms of wall time; audits/s is the "
              "median run\n", min_cell_seconds * 1000.0);
  bench::Rule(104);
  std::printf("%6s %8s %5s %10s %12s %14s %12s %10s %10s %7s\n", "jobs",
              "threads", "runs", "wall(s)", "audits/s", "triples/s",
              "allocs/audit", "run(s)", "barrier(s)", "stolen");
  bench::Rule(104);

  std::FILE* json = std::fopen("BENCH_service.json", "w");
  if (json != nullptr) std::fprintf(json, "[\n");
  bool first_record = true;
  bool deterministic = true;
  // Cross-worker HPD solver counters summed over every sweep cell: the
  // service-level evals-per-solve record the perf gate checks, so solver
  // efficiency is guarded under parallel load too, not just in the
  // single-threaded step bench.
  HpdSolveStats sweep_hpd;
  // Median audits/s per (jobs, threads) cell, feeding the closing
  // thread-scaling record.
  std::map<int, std::map<int, double>> cell_audits_per_second;

  for (const int jobs_n : job_sweep) {
    // A representative mixed workload: methods x designs x split seeds.
    std::vector<EvaluationJob> jobs;
    jobs.reserve(jobs_n);
    for (int i = 0; i < jobs_n; ++i) {
      EvaluationJob job;
      job.sampler = (i % 2 == 0) ? static_cast<const Sampler*>(&srs)
                                 : static_cast<const Sampler*>(&twcs);
      job.annotator = &annotator;
      job.config.method = methods[(i / 2) % 4];
      job.seed = EvaluationService::DeriveJobSeed(seed, i);
      jobs.push_back(std::move(job));
    }

    uint64_t reference_triples = 0;
    for (size_t s = 0; s < thread_sweep.size(); ++s) {
      // One persistent service per cell: the pool spawns once (charged to
      // the first run's spawn_seconds) and worker contexts stay warm
      // across the repeat loop, which is exactly how a long-lived service
      // process behaves.
      EvaluationService service(
          EvaluationService::Options{.num_threads = thread_sweep[s]});
      std::vector<double> run_audits_per_second;
      std::vector<double> run_wall_seconds;
      double total_wall = 0.0;
      double spawn_seconds = 0.0;
      double submit_seconds = 0.0;
      double run_seconds = 0.0;
      double barrier_seconds = 0.0;
      uint64_t stolen_groups = 0;
      size_t groups = 0;
      size_t failed = 0;
      // Robustness counters summed over the cell's runs — all zero under
      // the bench's healthy unarmed default, so the JSON doubles as a
      // regression record that plain batches never degrade or retry.
      size_t degraded_jobs = 0;
      uint64_t total_retries = 0;
      size_t deadline_hits = 0;
      uint64_t annotated_triples = 0;
      HpdSolveStats cell_hpd;
      const uint64_t allocs_before = alloc_counter::Current();
      while (run_wall_seconds.size() < 3 || total_wall < min_cell_seconds) {
        const EvaluationBatchResult batch = service.RunBatch(jobs);
        const ServiceBatchStats& stats = batch.stats;
        if (run_wall_seconds.empty()) {
          annotated_triples = stats.annotated_triples;
          failed = stats.failed;
          groups = stats.groups;
        } else if (stats.annotated_triples != annotated_triples) {
          deterministic = false;  // Repeats of one cell must agree.
        }
        run_audits_per_second.push_back(stats.audits_per_second);
        run_wall_seconds.push_back(stats.wall_seconds);
        total_wall += stats.wall_seconds;
        spawn_seconds += stats.spawn_seconds;
        submit_seconds += stats.submit_seconds;
        run_seconds += stats.run_seconds;
        barrier_seconds += stats.barrier_seconds;
        stolen_groups += stats.stolen_groups;
        degraded_jobs += stats.degraded_jobs;
        total_retries += stats.total_retries;
        deadline_hits += stats.deadline_hits;
        cell_hpd += stats.hpd;
        if (run_wall_seconds.size() >= 512) break;  // Pathology guard.
      }
      const uint64_t allocs = alloc_counter::Current() - allocs_before;
      const size_t runs = run_wall_seconds.size();
      if (s == 0) {
        reference_triples = annotated_triples;
      } else if (annotated_triples != reference_triples) {
        deterministic = false;  // Thread counts must agree.
      }
      const double median_audits = Median(run_audits_per_second);
      const double median_wall = Median(run_wall_seconds);
      const double median_triples =
          median_wall > 0.0 ? static_cast<double>(annotated_triples) /
                                  median_wall
                            : 0.0;
      const double allocs_per_audit =
          static_cast<double>(allocs) /
          (static_cast<double>(jobs.size()) * static_cast<double>(runs));
      sweep_hpd += cell_hpd;
      const double evals_per_solve =
          cell_hpd.total_solves() > 0
              ? static_cast<double>(cell_hpd.total_beta_evals()) /
                    static_cast<double>(cell_hpd.total_solves())
              : 0.0;
      // Per-run means for the split (spawn is a one-off, reported whole).
      const double mean_submit = submit_seconds / static_cast<double>(runs);
      const double mean_run = run_seconds / static_cast<double>(runs);
      const double mean_barrier =
          barrier_seconds / static_cast<double>(runs);
      cell_audits_per_second[jobs_n][thread_sweep[s]] = median_audits;
      std::printf(
          "%6d %8d %5zu %10.3f %12.1f %14.0f %12.1f %10.4f %10.4f %7llu\n",
          jobs_n, service.num_threads(), runs, median_wall, median_audits,
          median_triples, allocs_per_audit, mean_run, mean_barrier,
          static_cast<unsigned long long>(stolen_groups));
      if (json != nullptr) {
        std::fprintf(
            json,
            "%s  {\"bench\": \"service_throughput\", \"jobs\": %d, "
            "\"threads\": %d, \"runs\": %zu, \"wall_seconds\": %.6f, "
            "\"audits_per_second\": %.2f, "
            "\"triples_per_second\": %.2f, "
            "\"annotated_triples\": %llu, "
            "\"allocations_per_audit\": %.2f, \"failed\": %zu, "
            "\"groups\": %zu, \"stolen_groups\": %llu, "
            "\"spawn_seconds\": %.6f, \"submit_seconds\": %.6f, "
            "\"run_seconds\": %.6f, \"barrier_seconds\": %.6f, "
            "\"degraded_jobs\": %zu, \"total_retries\": %llu, "
            "\"deadline_hits\": %zu, "
            "\"hpd_solves\": %llu, \"hpd_newton_solves\": %llu, "
            "\"hpd_warm_cache_hits\": %llu, "
            "\"hpd_beta_evals_per_solve\": %.2f}",
            first_record ? "" : ",\n", jobs_n, service.num_threads(), runs,
            median_wall, median_audits, median_triples,
            static_cast<unsigned long long>(annotated_triples),
            allocs_per_audit, failed, groups,
            static_cast<unsigned long long>(stolen_groups), spawn_seconds,
            mean_submit, mean_run, mean_barrier, degraded_jobs,
            static_cast<unsigned long long>(total_retries), deadline_hits,
            static_cast<unsigned long long>(cell_hpd.total_solves()),
            static_cast<unsigned long long>(cell_hpd.newton.solves),
            static_cast<unsigned long long>(cell_hpd.warm_cache_hits),
            evals_per_solve);
        first_record = false;
      }
    }
  }
  // ---- Durable multi-writer cell -----------------------------------------
  // N concurrent jobs share ONE annotation store with per-label fsync
  // durability (`sync_appends`): every judgment funnels through the store's
  // group-commit queue, so the cell's fsync bill is `commit_syncs`, far
  // below one per label when coalescing works. Each job also checkpoints
  // itself every step (the durable-audit shape), which litters the log with
  // superseded snapshots — exactly the garbage the closing compaction
  // record then measures reclaiming. The second batch re-runs the same jobs
  // against the now-populated store: every triple must answer from the
  // index (zero oracle calls), the durable replay fast path.
  {
    const char* store_path = "BENCH_store.wal";
    std::remove(store_path);
    AnnotationStore::Options store_options;
    store_options.sync_appends = true;
    auto store_open = AnnotationStore::Open(store_path, store_options);
    if (!store_open.ok()) {
      std::fprintf(stderr, "cannot open bench store: %s\n",
                   store_open.status().ToString().c_str());
      return 1;
    }
    AnnotationStore* store = store_open->get();
    const int durable_jobs_n = 16;
    const int durable_threads = std::min(4, std::max(1, max_threads));
    std::vector<std::unique_ptr<CheckpointManager>> managers;
    std::vector<EvaluationJob> jobs;
    jobs.reserve(durable_jobs_n);
    for (int i = 0; i < durable_jobs_n; ++i) {
      EvaluationJob job;
      job.sampler = (i % 2 == 0) ? static_cast<const Sampler*>(&srs)
                                 : static_cast<const Sampler*>(&twcs);
      job.annotator = &annotator;
      job.config.method = methods[(i / 2) % 4];
      // A looser MoE keeps the fsync-bound cell short; the throughput
      // story lives in the sweep above, this cell is about commit batching.
      job.config.moe_threshold = 0.1;
      job.seed = EvaluationService::DeriveJobSeed(seed, 4096 + i);
      job.store = store;
      job.audit_id = static_cast<uint64_t>(i) + 1;
      managers.push_back(std::make_unique<CheckpointManager>(
          store, job.audit_id, CheckpointOptions{}));
      CheckpointManager* manager = managers.back().get();
      job.on_step = [manager](const EvaluationSession& session) {
        return manager->OnStep(session);
      };
      jobs.push_back(std::move(job));
    }
    EvaluationService service(
        EvaluationService::Options{.num_threads = durable_threads});
    const EvaluationBatchResult write_batch = service.RunBatch(jobs);
    const EvaluationBatchResult replay_batch = service.RunBatch(jobs);
    const ServiceBatchStats& ws = write_batch.stats;
    const ServiceBatchStats& rs = replay_batch.stats;
    if (rs.store_oracle_calls != 0 || rs.annotated_triples !=
        ws.annotated_triples) {
      deterministic = false;  // Replay must be free and identical.
    }
    const double fsyncs_per_label =
        ws.store_oracle_calls > 0
            ? static_cast<double>(ws.store_commit_syncs) /
                  static_cast<double>(ws.store_oracle_calls)
            : 0.0;
    std::printf("durable multi-writer: %d jobs x 1 store, %d threads: "
                "%llu labels, %llu group commits, %llu fsyncs "
                "(%.3f/label), replay oracle calls: %llu\n",
                durable_jobs_n, durable_threads,
                static_cast<unsigned long long>(ws.store_oracle_calls),
                static_cast<unsigned long long>(ws.store_commit_batches),
                static_cast<unsigned long long>(ws.store_commit_syncs),
                fsyncs_per_label,
                static_cast<unsigned long long>(rs.store_oracle_calls));
    if (json != nullptr) {
      std::fprintf(
          json,
          ",\n  {\"bench\": \"store_multi_writer\", \"jobs\": %d, "
          "\"threads\": %d, \"wall_seconds\": %.6f, \"failed\": %zu, "
          "\"degraded_jobs\": %zu, \"total_retries\": %llu, "
          "\"store_oracle_calls\": %llu, \"store_hits\": %llu, "
          "\"commit_batches\": %llu, \"commit_frames\": %llu, "
          "\"commit_syncs\": %llu, \"fsyncs_per_label\": %.4f, "
          "\"replay_oracle_calls\": %llu, \"replay_store_hits\": %llu, "
          "\"replay_identical\": %s}",
          durable_jobs_n, durable_threads, ws.wall_seconds, ws.failed,
          ws.degraded_jobs + rs.degraded_jobs,
          static_cast<unsigned long long>(ws.total_retries +
                                          rs.total_retries),
          static_cast<unsigned long long>(ws.store_oracle_calls),
          static_cast<unsigned long long>(ws.store_hits),
          static_cast<unsigned long long>(ws.store_commit_batches),
          static_cast<unsigned long long>(ws.store_commit_frames),
          static_cast<unsigned long long>(ws.store_commit_syncs),
          fsyncs_per_label,
          static_cast<unsigned long long>(rs.store_oracle_calls),
          static_cast<unsigned long long>(rs.store_hits),
          rs.store_oracle_calls == 0 &&
                  rs.annotated_triples == ws.annotated_triples
              ? "true"
              : "false");
    }
    // Compaction space amplification: live bytes are known exactly from
    // the store's byte accounting, so `bytes_after / live_before` is a
    // machine-independent structural ratio (trailer + header overhead
    // only) — the absolute gate check_perf_regression.py enforces.
    const uint64_t bytes_before = store->file_bytes();
    const uint64_t live_before = store->live_bytes();
    const Status compacted = store->Compact();
    if (!compacted.ok()) {
      std::fprintf(stderr, "bench store compaction failed: %s\n",
                   compacted.ToString().c_str());
      return 1;
    }
    const uint64_t bytes_after = store->file_bytes();
    const double amp_before =
        live_before > 0 ? static_cast<double>(bytes_before) /
                              static_cast<double>(live_before)
                        : 0.0;
    const double amp_after =
        live_before > 0 ? static_cast<double>(bytes_after) /
                              static_cast<double>(live_before)
                        : 0.0;
    std::printf("store compaction: %llu -> %llu bytes (%llu live), "
                "amplification %.2fx -> %.4fx\n",
                static_cast<unsigned long long>(bytes_before),
                static_cast<unsigned long long>(bytes_after),
                static_cast<unsigned long long>(live_before), amp_before,
                amp_after);
    if (json != nullptr) {
      std::fprintf(json,
                   ",\n  {\"bench\": \"store_compaction\", "
                   "\"bytes_before\": %llu, \"live_before\": %llu, "
                   "\"bytes_after\": %llu, "
                   "\"space_amplification_before\": %.4f, "
                   "\"space_amplification_after\": %.4f}",
                   static_cast<unsigned long long>(bytes_before),
                   static_cast<unsigned long long>(live_before),
                   static_cast<unsigned long long>(bytes_after), amp_before,
                   amp_after);
    }
    std::remove(store_path);
  }

  // Thread-scaling ratio on the largest (steadiest) cell: median 4-thread
  // audits/s over median 1-thread audits/s. The gate only enforces it on
  // hosts with >= 4 hardware threads — on smaller boxes the ratio measures
  // the scheduler, not the service — so the record carries the hardware
  // width alongside the ratio.
  const int scaling_jobs = job_sweep.back();
  const auto& scaling_cell = cell_audits_per_second[scaling_jobs];
  const double one_thread = scaling_cell.count(1) ? scaling_cell.at(1) : 0.0;
  const double four_thread = scaling_cell.count(4) ? scaling_cell.at(4) : 0.0;
  const double scaling_ratio =
      one_thread > 0.0 ? four_thread / one_thread : 0.0;
  if (json != nullptr) {
    // The machine-independent summary record the perf gate compares: beta
    // evaluations per HPD solve aggregated over the whole sweep (every
    // thread count and batch size), plus the Newton share.
    const double sweep_evals_per_solve =
        sweep_hpd.total_solves() > 0
            ? static_cast<double>(sweep_hpd.total_beta_evals()) /
                  static_cast<double>(sweep_hpd.total_solves())
            : 0.0;
    const double newton_share =
        sweep_hpd.total_solves() > 0
            ? static_cast<double>(sweep_hpd.newton.solves) /
                  static_cast<double>(sweep_hpd.total_solves())
            : 0.0;
    std::fprintf(json,
                 ",\n  {\"bench\": \"service_hpd_summary\", "
                 "\"hpd_solves\": %llu, \"hpd_beta_evals_per_solve\": %.2f, "
                 "\"hpd_newton_share\": %.3f, \"hpd_warm_cache_hits\": %llu}",
                 static_cast<unsigned long long>(sweep_hpd.total_solves()),
                 sweep_evals_per_solve, newton_share,
                 static_cast<unsigned long long>(sweep_hpd.warm_cache_hits));
    std::fprintf(json,
                 ",\n  {\"bench\": \"service_thread_scaling\", "
                 "\"jobs\": %d, \"threads_scaling_ratio\": %.3f, "
                 "\"audits_per_second_1t\": %.2f, "
                 "\"audits_per_second_4t\": %.2f, "
                 "\"hardware_threads\": %d, \"min_cell_seconds\": %.3f}",
                 scaling_jobs, scaling_ratio, one_thread, four_thread,
                 hardware_threads, min_cell_seconds);
    std::fprintf(json, "\n]\n");
    std::fclose(json);
  }
  bench::Rule(104);
  std::printf("threads scaling ratio (4t/1t, %d jobs): %.2f "
              "(%d hardware threads)\n",
              scaling_jobs, scaling_ratio, hardware_threads);
  std::printf("deterministic across thread counts and repeats: %s\n",
              deterministic ? "yes" : "NO — BUG");
  std::printf("wrote BENCH_service.json\n");
  return deterministic ? 0 : 1;
}
