// Per-step latency of EvaluationSession::Step() as the accumulated sample
// grows: the streaming-estimator contract says one step costs O(batch)
// regardless of how many triples are already annotated, so the per-step
// latency measured around n = 1k, 10k, and 50k annotated triples must stay
// flat for every design (before the EstimatorAccumulator it grew linearly:
// each step re-walked the whole sample and cold-started the HPD solvers).
//
// Emits BENCH_step.json: one record per (design, checkpoint) with the
// median and mean step latency over a measurement window, plus one summary
// record per design with the 50k/1k flatness ratio.
//
// Knobs: KGACC_SEED, KGACC_REPS = steps per measurement window (default 40).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

using namespace kgacc;

double MedianUs(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  const size_t n = xs.size();
  return n == 0 ? 0.0 : (n % 2 == 1 ? xs[n / 2]
                                    : 0.5 * (xs[n / 2 - 1] + xs[n / 2]));
}

double MeanUs(const std::vector<double>& xs) {
  double sum = 0.0;
  for (double x : xs) sum += x;
  return xs.empty() ? 0.0 : sum / static_cast<double>(xs.size());
}

struct Checkpoint {
  uint64_t target_n = 0;
  double median_us = 0.0;
  double mean_us = 0.0;
  uint64_t measured_at_n = 0;
  int steps_timed = 0;
};

}  // namespace

int main() {
  const uint64_t seed = bench::BaseSeed();
  const int window = bench::Reps(40);
  const std::vector<uint64_t> checkpoints = {1000, 10000, 50000};

  // A mid-size synthetic population: large enough that a 50k-triple audit
  // samples a small fraction, small enough to build instantly.
  SyntheticKgConfig kg_cfg;
  kg_cfg.num_clusters = 200000;
  kg_cfg.mean_cluster_size = 3.0;
  kg_cfg.accuracy = 0.9;
  kg_cfg.seed = seed;
  const auto kg = *SyntheticKg::Create(kg_cfg);
  OracleAnnotator annotator;

  // One audit per design, batch sizes tuned so every step annotates ~100
  // triples (the latency of interest is per *step*, not per triple).
  struct Design {
    const char* name;
    std::unique_ptr<Sampler> sampler;
  };
  std::vector<Design> designs;
  designs.push_back({"SRS", std::make_unique<SrsSampler>(
                                kg, SrsConfig{.batch_size = 100})});
  designs.push_back({"TWCS", std::make_unique<TwcsSampler>(
                                 kg, TwcsConfig{.batch_clusters = 34,
                                                .second_stage_size = 3})});
  designs.push_back({"RCS", std::make_unique<RcsSampler>(
                                kg, ClusterConfig{.batch_clusters = 34})});
  designs.push_back({"SSRS", std::make_unique<StratifiedSampler>(
                                 kg, StratifiedConfig{.batch_size = 100})});

  // An audit that never converges inside the measurement range: the MoE
  // budget is unreachable, so only the triple cap stops the session.
  EvaluationConfig config;
  config.method = IntervalMethod::kAhpd;
  config.moe_threshold = 1e-9;
  config.max_triples = checkpoints.back() + 20000;
  config.retain_unit_history = false;  // The O(batch) step needs no replay.

  std::printf("EvaluationSession::Step() latency vs accumulated sample size "
              "(aHPD, %d-step windows)\n", window);
  bench::Rule(76);
  std::printf("%8s %12s %14s %14s %14s %10s\n", "design", "n=1k(us)",
              "n=10k(us)", "n=50k(us)", "50k/1k", "steps");
  bench::Rule(76);

  std::FILE* json = std::fopen("BENCH_step.json", "w");
  if (json != nullptr) std::fprintf(json, "[\n");
  bool first_record = true;
  bool all_flat = true;

  for (Design& design : designs) {
    EvaluationSession session(*design.sampler, annotator, config,
                              seed + 17);
    std::vector<Checkpoint> measured;
    int total_steps = 0;
    for (const uint64_t target : checkpoints) {
      // Advance (unmeasured) until the sample reaches the checkpoint.
      while (!session.done() &&
             session.sample().num_triples() < target) {
        const auto outcome = session.Step();
        if (!outcome.ok()) {
          std::fprintf(stderr, "[%s] step failed: %s\n", design.name,
                       outcome.status().ToString().c_str());
          return 1;
        }
        ++total_steps;
      }
      // Measure a window of steps at this sample size.
      Checkpoint cp;
      cp.target_n = target;
      cp.measured_at_n = session.sample().num_triples();
      std::vector<double> step_us;
      step_us.reserve(window);
      for (int s = 0; s < window && !session.done(); ++s) {
        const auto start = std::chrono::steady_clock::now();
        const auto outcome = session.Step();
        const std::chrono::duration<double, std::micro> elapsed =
            std::chrono::steady_clock::now() - start;
        if (!outcome.ok()) {
          std::fprintf(stderr, "[%s] step failed: %s\n", design.name,
                       outcome.status().ToString().c_str());
          return 1;
        }
        step_us.push_back(elapsed.count());
        ++total_steps;
      }
      cp.steps_timed = static_cast<int>(step_us.size());
      cp.median_us = MedianUs(step_us);
      cp.mean_us = MeanUs(step_us);
      measured.push_back(cp);
    }

    const double ratio =
        measured.front().median_us > 0.0
            ? measured.back().median_us / measured.front().median_us
            : 0.0;
    all_flat = all_flat && ratio <= 2.0;
    std::printf("%8s %12.1f %14.1f %14.1f %13.2fx %10d\n", design.name,
                measured[0].median_us, measured[1].median_us,
                measured[2].median_us, ratio, total_steps);

    if (json != nullptr) {
      for (const Checkpoint& cp : measured) {
        std::fprintf(json,
                     "%s  {\"bench\": \"step_latency\", \"design\": \"%s\", "
                     "\"checkpoint_n\": %llu, \"measured_at_n\": %llu, "
                     "\"median_step_us\": %.3f, \"mean_step_us\": %.3f, "
                     "\"steps_timed\": %d}",
                     first_record ? "" : ",\n", design.name,
                     static_cast<unsigned long long>(cp.target_n),
                     static_cast<unsigned long long>(cp.measured_at_n),
                     cp.median_us, cp.mean_us, cp.steps_timed);
        first_record = false;
      }
      std::fprintf(json,
                   ",\n  {\"bench\": \"step_latency_summary\", "
                   "\"design\": \"%s\", \"latency_ratio_50k_over_1k\": %.3f, "
                   "\"flat\": %s}",
                   design.name, ratio, ratio <= 2.0 ? "true" : "false");
    }
  }
  if (json != nullptr) {
    std::fprintf(json, "\n]\n");
    std::fclose(json);
  }
  bench::Rule(76);
  std::printf("per-step cost flat (50k within 2x of 1k) for every design: "
              "%s\n", all_flat ? "yes" : "NO");
  std::printf("wrote BENCH_step.json\n");
  return 0;
}
