// Per-step latency of EvaluationSession::Step() as the accumulated sample
// grows: the streaming-estimator contract says one step costs O(batch)
// regardless of how many triples are already annotated, so the per-step
// latency measured around n = 1k, 10k, and 50k annotated triples must stay
// flat for every design (before the EstimatorAccumulator it grew linearly:
// each step re-walked the whole sample and cold-started the HPD solvers).
//
// Latency is reported as p50/p90/p99 quantiles rather than a mean: the
// historical distinct-set rehash spikes polluted the mean by ~7x (SRS 50k:
// mean 1270 us vs median 171 us in the PR 2 record) while leaving the
// median untouched, which is exactly the difference between "typical step"
// and "worst step" that a quantile row makes visible. With FlatSet64's
// incremental migration the tail should now sit near the median.
//
// Emits BENCH_step.json: one record per (design, checkpoint) with the
// p50/p90/p99 step latency over a measurement window, plus one summary
// record per design with the 50k/1k p50 flatness ratio.
//
// Each window additionally snapshots the thread-local HPD solver counters
// (credible.h): how many solves each path took (the 2x2 Newton KKT primary,
// its SQP fallback, limiting closed forms) and how many incomplete-beta
// evaluations (CDF + PDF + quantile) they spent per solve — so the Newton
// path's eval reduction is *measured* in the checked-in record, not
// asserted. The summary row carries the aggregate evals-per-solve, which
// tools/check_perf_regression.py gates alongside the latency ratios.
//
// Knobs: KGACC_SEED, KGACC_REPS = steps per measurement window (default 60).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

using namespace kgacc;

/// Quantile with linear interpolation over the sorted window.
double QuantileUs(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

struct Checkpoint {
  uint64_t target_n = 0;
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  uint64_t measured_at_n = 0;
  int steps_timed = 0;
  /// HPD solver counters accumulated over this window's steps.
  HpdSolveStats hpd;
};

double EvalsPerSolve(const HpdSolveStats& stats) {
  return stats.total_solves() == 0
             ? 0.0
             : static_cast<double>(stats.total_beta_evals()) /
                   static_cast<double>(stats.total_solves());
}

double NewtonShare(const HpdSolveStats& stats) {
  // Share of the *numeric* (non-limiting) solves the Newton path handled.
  const uint64_t numeric = stats.newton.solves + stats.slsqp.solves +
                           stats.slsqp_fallback.solves + stats.onedim.solves;
  return numeric == 0 ? 0.0
                      : static_cast<double>(stats.newton.solves) /
                            static_cast<double>(numeric);
}

HpdSolveStats CombineStats(const std::vector<Checkpoint>& checkpoints) {
  HpdSolveStats total;
  for (const Checkpoint& cp : checkpoints) total += cp.hpd;
  return total;
}

}  // namespace

int main() {
  const uint64_t seed = bench::BaseSeed();
  const int window = bench::Reps(60);
  const std::vector<uint64_t> checkpoints = {1000, 10000, 50000};

  // A mid-size synthetic population: large enough that a 50k-triple audit
  // samples a small fraction, small enough to build instantly.
  SyntheticKgConfig kg_cfg;
  kg_cfg.num_clusters = 200000;
  kg_cfg.mean_cluster_size = 3.0;
  kg_cfg.accuracy = 0.9;
  kg_cfg.seed = seed;
  const auto kg = *SyntheticKg::Create(kg_cfg);
  OracleAnnotator annotator;

  // One audit per design, batch sizes tuned so every step annotates ~100
  // triples (the latency of interest is per *step*, not per triple).
  struct Design {
    const char* name;
    std::unique_ptr<Sampler> sampler;
  };
  std::vector<Design> designs;
  designs.push_back({"SRS", std::make_unique<SrsSampler>(
                                kg, SrsConfig{.batch_size = 100})});
  designs.push_back({"TWCS", std::make_unique<TwcsSampler>(
                                 kg, TwcsConfig{.batch_clusters = 34,
                                                .second_stage_size = 3})});
  designs.push_back({"RCS", std::make_unique<RcsSampler>(
                                kg, ClusterConfig{.batch_clusters = 34})});
  designs.push_back({"SSRS", std::make_unique<StratifiedSampler>(
                                 kg, StratifiedConfig{.batch_size = 100})});

  // An audit that never converges inside the measurement range: the MoE
  // budget is unreachable, so only the triple cap stops the session.
  EvaluationConfig config;
  config.method = IntervalMethod::kAhpd;
  config.moe_threshold = 1e-9;
  config.max_triples = checkpoints.back() + 20000;
  config.retain_unit_history = false;  // The O(batch) step needs no replay.

  std::printf("EvaluationSession::Step() latency vs accumulated sample size "
              "(aHPD, %d-step windows)\n", window);
  bench::Rule(106);
  std::printf("%6s %9s | %26s | %26s | %9s | %6s %5s\n", "design", "n=1k p50",
              "n=10k p50/p90/p99 (us)", "n=50k p50/p90/p99 (us)",
              "50k/1k", "ev/slv", "newt");
  bench::Rule(106);

  std::FILE* json = std::fopen("BENCH_step.json", "w");
  if (json != nullptr) std::fprintf(json, "[\n");
  bool first_record = true;
  bool all_flat = true;

  for (Design& design : designs) {
    SessionScratch scratch;
    EvaluationSession session(*design.sampler, annotator, config, seed + 17,
                              &scratch);
    std::vector<Checkpoint> measured;
    int total_steps = 0;
    for (const uint64_t target : checkpoints) {
      // Advance (unmeasured) until the sample reaches the checkpoint.
      while (!session.done() &&
             session.sample().num_triples() < target) {
        const auto outcome = session.Step();
        if (!outcome.ok()) {
          std::fprintf(stderr, "[%s] step failed: %s\n", design.name,
                       outcome.status().ToString().c_str());
          return 1;
        }
        ++total_steps;
      }
      // Measure a window of steps at this sample size.
      Checkpoint cp;
      cp.target_n = target;
      cp.measured_at_n = session.sample().num_triples();
      std::vector<double> step_us;
      step_us.reserve(window);
      ResetThreadHpdStats();
      for (int s = 0; s < window && !session.done(); ++s) {
        const auto start = std::chrono::steady_clock::now();
        const auto outcome = session.Step();
        const std::chrono::duration<double, std::micro> elapsed =
            std::chrono::steady_clock::now() - start;
        if (!outcome.ok()) {
          std::fprintf(stderr, "[%s] step failed: %s\n", design.name,
                       outcome.status().ToString().c_str());
          return 1;
        }
        step_us.push_back(elapsed.count());
        ++total_steps;
      }
      cp.steps_timed = static_cast<int>(step_us.size());
      cp.p50_us = QuantileUs(step_us, 0.50);
      cp.p90_us = QuantileUs(step_us, 0.90);
      cp.p99_us = QuantileUs(step_us, 0.99);
      cp.hpd = ThreadHpdStatsSnapshot();
      measured.push_back(cp);
    }

    const double ratio = measured.front().p50_us > 0.0
                             ? measured.back().p50_us / measured.front().p50_us
                             : 0.0;
    all_flat = all_flat && ratio <= 2.0;
    const HpdSolveStats design_hpd = CombineStats(measured);
    std::printf("%6s %9.1f | %8.1f %8.1f %8.1f | %8.1f %8.1f %8.1f | %8.2fx"
                " | %6.1f %5.0f%%\n",
                design.name, measured[0].p50_us, measured[1].p50_us,
                measured[1].p90_us, measured[1].p99_us, measured[2].p50_us,
                measured[2].p90_us, measured[2].p99_us, ratio,
                EvalsPerSolve(design_hpd), 100.0 * NewtonShare(design_hpd));

    if (json != nullptr) {
      for (const Checkpoint& cp : measured) {
        std::fprintf(json,
                     "%s  {\"bench\": \"step_latency\", \"design\": \"%s\", "
                     "\"checkpoint_n\": %llu, \"measured_at_n\": %llu, "
                     "\"p50_step_us\": %.3f, \"p90_step_us\": %.3f, "
                     "\"p99_step_us\": %.3f, \"steps_timed\": %d, "
                     "\"hpd_solves\": %llu, \"hpd_newton_solves\": %llu, "
                     "\"hpd_sqp_solves\": %llu, \"hpd_onedim_solves\": %llu, "
                     "\"hpd_limiting_solves\": %llu, "
                     "\"hpd_warm_cache_hits\": %llu, "
                     "\"hpd_beta_evals_per_solve\": %.2f}",
                     first_record ? "" : ",\n", design.name,
                     static_cast<unsigned long long>(cp.target_n),
                     static_cast<unsigned long long>(cp.measured_at_n),
                     cp.p50_us, cp.p90_us, cp.p99_us, cp.steps_timed,
                     static_cast<unsigned long long>(cp.hpd.total_solves()),
                     static_cast<unsigned long long>(cp.hpd.newton.solves),
                     static_cast<unsigned long long>(
                         cp.hpd.slsqp.solves + cp.hpd.slsqp_fallback.solves),
                     static_cast<unsigned long long>(cp.hpd.onedim.solves),
                     static_cast<unsigned long long>(cp.hpd.limiting.solves),
                     static_cast<unsigned long long>(cp.hpd.warm_cache_hits),
                     EvalsPerSolve(cp.hpd));
        first_record = false;
      }
      std::fprintf(json,
                   ",\n  {\"bench\": \"step_latency_summary\", "
                   "\"design\": \"%s\", \"latency_ratio_50k_over_1k\": %.3f, "
                   "\"flat\": %s, \"hpd_beta_evals_per_solve\": %.2f, "
                   "\"hpd_newton_share\": %.3f}",
                   design.name, ratio, ratio <= 2.0 ? "true" : "false",
                   EvalsPerSolve(design_hpd), NewtonShare(design_hpd));
    }
  }
  if (json != nullptr) {
    std::fprintf(json, "\n]\n");
    std::fclose(json);
  }
  bench::Rule(106);
  std::printf("per-step cost flat (50k p50 within 2x of 1k) for every "
              "design: %s\n", all_flat ? "yes" : "NO");
  std::printf("wrote BENCH_step.json\n");
  return 0;
}
