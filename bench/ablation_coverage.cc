// Ablation C: empirical coverage of the 95% intervals at fixed sample size
// n = 30, swept across the true accuracy mu. This regenerates the
// reliability comparison behind §3/§4: Wald's coverage collapses toward the
// boundaries (where real KGs live), Wilson stays near nominal at the cost
// of width, and the CrIs deliver close-to-nominal coverage with the
// shortest intervals.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace kgacc;
  const int reps = bench::Reps(20000);
  const uint64_t seed = bench::BaseSeed();
  const int n = 30;
  const double alpha = 0.05;
  const auto priors = DefaultUninformativePriors();

  std::printf("Ablation C: empirical coverage of 95%% intervals at n=%d "
              "(%d draws per cell)\n", n, reps);
  bench::Rule(86);
  std::printf("%6s %8s %8s %8s %8s %8s | %9s %9s\n", "mu", "Wald", "Wilson",
              "CP", "ET-K", "aHPD", "w(Wils)", "w(aHPD)");
  bench::Rule(86);

  Rng rng(seed);
  for (const double mu :
       {0.50, 0.60, 0.70, 0.80, 0.85, 0.90, 0.95, 0.99}) {
    int cover[5] = {0, 0, 0, 0, 0};
    double width_wilson = 0.0, width_ahpd = 0.0;
    for (int r = 0; r < reps; ++r) {
      const int64_t tau = BinomialSample(n, mu, &rng);
      const double mu_hat = static_cast<double>(tau) / n;

      AccuracyEstimate est;
      est.mu = mu_hat;
      est.n = n;
      est.tau = static_cast<uint64_t>(tau);
      est.num_units = n;
      est.variance = mu_hat * (1.0 - mu_hat) / n;

      const auto wald = *WaldInterval(est, alpha);
      const auto wilson = *WilsonInterval(mu_hat, n, alpha);
      const auto cp = *ClopperPearsonInterval(est.tau, n, alpha);
      const auto et = *EqualTailedInterval(
          *KermanPrior().Posterior(static_cast<double>(tau), n), alpha);
      const auto ahpd = *AhpdSelect(priors, static_cast<double>(tau), n,
                                    alpha);

      cover[0] += wald.Contains(mu) ? 1 : 0;
      cover[1] += wilson.Contains(mu) ? 1 : 0;
      cover[2] += cp.Contains(mu) ? 1 : 0;
      cover[3] += et.Contains(mu) ? 1 : 0;
      cover[4] += ahpd.interval.Contains(mu) ? 1 : 0;
      width_wilson += wilson.Width();
      width_ahpd += ahpd.interval.Width();
    }
    std::printf("%6.2f %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%% | %9.4f "
                "%9.4f\n", mu, 100.0 * cover[0] / reps,
                100.0 * cover[1] / reps, 100.0 * cover[2] / reps,
                100.0 * cover[3] / reps, 100.0 * cover[4] / reps,
                width_wilson / reps, width_ahpd / reps);
  }
  bench::Rule(86);
  std::printf("Expected shape: Wald collapses at mu -> 1 (zero-width "
              "samples); Wilson and the\nCrIs stay near 95%%, with aHPD "
              "producing the narrowest intervals.\n");
  return 0;
}
