// Reproduces Figure 3: expected width of 1-alpha HPD intervals under the
// Kerman, Jeffreys and Uniform priors for n_S = 30 and alpha = 0.05, swept
// across the true accuracy mu. The expectation is computed exactly:
// E[width | mu] = sum_tau Bin(tau; n, mu) * width(HPD(prior + (tau, n))).
// The paper's claims to verify: Kerman is shortest in the extreme regions,
// Uniform in the central region, Jeffreys nowhere.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

int main() {
  using namespace kgacc;
  const int n = 30;
  const double alpha = 0.05;
  const auto priors = DefaultUninformativePriors();

  // Precompute HPD widths per (prior, tau) — they do not depend on mu.
  std::vector<std::vector<double>> widths(priors.size(),
                                          std::vector<double>(n + 1));
  for (size_t p = 0; p < priors.size(); ++p) {
    for (int tau = 0; tau <= n; ++tau) {
      const auto posterior = *priors[p].Posterior(tau, n);
      widths[p][tau] = (*HpdInterval(posterior, alpha)).interval.Width();
    }
  }

  std::printf("Figure 3: expected HPD width under uninformative priors "
              "(n=%d, alpha=%.2f)\n", n, alpha);
  bench::Rule(66);
  std::printf("%6s %10s %10s %10s   %s\n", "mu", "Kerman", "Jeffreys",
              "Uniform", "shortest");
  bench::Rule(66);

  int kerman_best = 0, jeffreys_best = 0, uniform_best = 0;
  for (int step = 0; step <= 50; ++step) {
    const double mu = step / 50.0;
    double expected[3] = {0.0, 0.0, 0.0};
    for (int tau = 0; tau <= n; ++tau) {
      const double pmf = *BinomialPmf(tau, n, mu);
      for (size_t p = 0; p < priors.size(); ++p) {
        expected[p] += pmf * widths[p][tau];
      }
    }
    size_t best = 0;
    for (size_t p = 1; p < priors.size(); ++p) {
      if (expected[p] < expected[best]) best = p;
    }
    if (best == 0) ++kerman_best;
    if (best == 1) ++jeffreys_best;
    if (best == 2) ++uniform_best;
    std::printf("%6.2f %10.5f %10.5f %10.5f   %s\n", mu, expected[0],
                expected[1], expected[2], priors[best].name.c_str());
  }
  bench::Rule(66);
  std::printf("Shortest-prior counts over the sweep: Kerman=%d Jeffreys=%d "
              "Uniform=%d\n", kerman_best, jeffreys_best, uniform_best);
  std::printf("Paper reference: Kerman optimal in the extreme regions, "
              "Uniform centrally, Jeffreys never.\n");
  return 0;
}
