// Reproduces Table 3: Wald vs Wilson vs aHPD on YAGO, NELL, DBPEDIA and
// FACTBENCH, under SRS and TWCS (m = 3). Reports annotated triples and
// annotation cost (hours) as mean±std over KGACC_REPS repetitions, with the
// paper's significance marks: † = aHPD vs Wald and ‡ = aHPD vs Wilson
// differ at p < 0.01 (pooled independent t-test on costs).

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace kgacc;
  const int reps = bench::Reps();
  const uint64_t seed = bench::BaseSeed();
  const auto profiles = SmallProfiles();

  std::printf("Table 3: efficiency of Wald / Wilson / aHPD (alpha=0.05, "
              "eps=0.05, %d reps)\n", reps);
  std::printf("(repetitions fan out on the EvaluationService: %d worker "
              "threads)\n", bench::SharedService().num_threads());
  for (const bool twcs : {false, true}) {
    std::printf("\n[%s]\n", twcs ? "TWCS, m=3" : "SRS");
    bench::Rule(108);
    std::printf("%-10s", "Interval");
    for (const DatasetProfile& profile : profiles) {
      std::printf(" %11s %12s", (profile.name + " trp").c_str(), "cost(h)");
    }
    std::printf("\n");
    bench::Rule(108);

    // Run all three methods per dataset so t-tests see matched populations.
    std::vector<ReplicationSummary> wald_s, wilson_s, ahpd_s;
    for (const DatasetProfile& profile : profiles) {
      const auto kg = *MakeKg(profile, seed);
      bench::BenchConfig config;
      config.twcs = twcs;
      config.twcs_m = 3;
      config.method = IntervalMethod::kWald;
      wald_s.push_back(bench::RunConfig(kg, config, reps, seed + 11));
      config.method = IntervalMethod::kWilson;
      wilson_s.push_back(bench::RunConfig(kg, config, reps, seed + 12));
      config.method = IntervalMethod::kAhpd;
      ahpd_s.push_back(bench::RunConfig(kg, config, reps, seed + 13));
    }

    auto print_method = [&](const char* name,
                            const std::vector<ReplicationSummary>& rows,
                            bool is_ahpd) {
      std::printf("%-10s", name);
      for (size_t i = 0; i < rows.size(); ++i) {
        std::string cost = bench::MeanStd(rows[i].cost_summary, 2);
        if (is_ahpd) {
          cost += bench::SignificanceMarks(rows[i], wald_s[i], wilson_s[i]);
        }
        std::printf(" %11s %12s",
                    bench::MeanStd(rows[i].triples_summary, 0).c_str(),
                    cost.c_str());
      }
      std::printf("\n");
    };
    print_method("Wald", wald_s, false);
    print_method("Wilson", wilson_s, false);
    print_method("aHPD", ahpd_s, true);
    bench::Rule(108);
  }
  std::printf("\nPaper reference (SRS): aHPD 32±5/0.60, 96±44/1.76, "
              "182±42/3.45, 378±3/6.32 —\nstatistically below Wald and "
              "Wilson on the skewed datasets, tied on FACTBENCH.\n"
              "(TWCS): aHPD 31±2/0.41, 112±68/1.40, 222±83/2.55, "
              "257±39/3.11.\n");
  return 0;
}
